"""Zero-copy shared-memory transport for warmed CSR arrays.

The process backend (:mod:`repro.service.backends`) must give every worker
process the same multi-hundred-megabyte adjacency and PM/SPM index matrices
without N copies of them.  This module implements the flat-buffer layer that
makes that possible:

* :func:`export_arrays` packs a set of named numpy arrays into **one**
  ``multiprocessing.shared_memory`` segment (64-byte-aligned slots) and
  returns an owner handle plus a picklable :class:`SegmentManifest`
  describing every array's dtype, shape, and offset.
* :func:`attach_arrays` maps that segment inside a worker process and
  rebuilds the arrays as **views** over the shared buffer — zero bytes
  copied, marked read-only so an accidental in-place mutation fails loudly
  instead of corrupting every other worker.
* A content :func:`fingerprint` travels with the manifest and is recomputed
  on attach, so a torn, stale, or mismatched segment is rejected before the
  engine ever multiplies through it.

Lifecycle: the parent owns the segment (create → close+unlink); workers
only ever ``close`` their mapping.  :func:`active_segments` tracks segments
this process created and has not yet unlinked — the cleanup regression
tests assert it drains to empty on every path, including error paths.
"""

from __future__ import annotations

import hashlib
import mmap
import secrets
import tempfile
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.exceptions import ServiceError

__all__ = [
    "ArraySpec",
    "SegmentManifest",
    "SharedArraySegment",
    "active_segments",
    "attach_arrays",
    "export_arrays",
]

#: Slot alignment inside the segment; 64 bytes keeps every array on its own
#: cache line and satisfies any SIMD alignment numpy/scipy could want.
_ALIGN = 64

#: Bytes of head/tail content hashed per array.  Hashing whole gigabyte
#: segments on every attach would dominate worker start-up; shape + dtype +
#: nbytes + boundary bytes catches the realistic failure modes (wrong
#: segment, torn write, stale manifest) at O(1) cost per array.
_DIGEST_SPAN = 1024

# Segments created (and not yet unlinked) by this process, for leak checks.
_ACTIVE: set[str] = set()
_ACTIVE_LOCK = threading.Lock()


def active_segments() -> set[str]:
    """Names of shared-memory segments this process currently owns."""
    with _ACTIVE_LOCK:
        return set(_ACTIVE)


@dataclass(frozen=True)
class ArraySpec:
    """Location and layout of one array inside a shared segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to reattach a segment (picklable).

    ``backing`` selects the transport: ``"shm"`` names a
    ``multiprocessing.shared_memory`` segment (lives in ``/dev/shm`` on
    Linux, bounded by that filesystem's size); ``"file"`` names an ordinary
    file mapped read-only — same zero-copy sharing across processes, but
    sized by the disk and paged by the kernel, the right tier for
    mmap-storage indexes larger than comfortable RAM.
    """

    segment: str
    total_bytes: int
    arrays: tuple[ArraySpec, ...]
    fingerprint: str
    backing: str = field(default="shm")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _digest_update(digest, spec: ArraySpec, view: np.ndarray) -> None:
    digest.update(spec.key.encode())
    digest.update(spec.dtype.encode())
    digest.update(repr(spec.shape).encode())
    digest.update(spec.nbytes.to_bytes(8, "little"))
    # Head and tail spans, without materializing the whole buffer.
    buffer = view.view(np.uint8).reshape(-1)
    digest.update(buffer[:_DIGEST_SPAN].tobytes())
    if buffer.size > _DIGEST_SPAN:
        digest.update(buffer[-_DIGEST_SPAN:].tobytes())


def fingerprint(specs: "tuple[ArraySpec, ...]", views: Mapping[str, np.ndarray]) -> str:
    """Content fingerprint over array layout plus boundary bytes."""
    digest = hashlib.blake2b(digest_size=16)
    for spec in specs:
        _digest_update(digest, spec, np.ascontiguousarray(views[spec.key]))
    return digest.hexdigest()


class _FileBackedSegment:
    """A segment backed by an ordinary file, mapped read-only.

    Duck-typed to the slice of ``multiprocessing.shared_memory.
    SharedMemory`` the rest of this module uses (``buf`` / ``close`` /
    ``unlink``), so :class:`SharedArraySegment` and workers handle both
    backings identically.  Linux keeps an unlinked inode alive while
    mappings exist, so the owner may unlink while workers still read.
    """

    def __init__(self, path: "str | Path") -> None:
        self._path = Path(path)
        self._file = open(self._path, "rb")
        self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)

    @property
    def name(self) -> str:
        return str(self._path)

    @property
    def buf(self) -> memoryview:
        return memoryview(self._mmap)

    def close(self) -> None:
        try:
            self._mmap.close()
            self._file.close()
        except Exception:  # pragma: no cover - double close
            pass

    def unlink(self) -> None:
        try:
            self._path.unlink()
        except FileNotFoundError:
            pass


class SharedArraySegment:
    """Owner-side handle of one exported segment.

    ``close()`` drops this process's mapping; ``unlink()`` removes the
    segment from the OS (idempotent).  The parent service calls both on
    shutdown — workers never unlink.  Wraps either a shared-memory segment
    or a :class:`_FileBackedSegment`, per the manifest's ``backing``.
    """

    def __init__(
        self,
        shm: "shared_memory.SharedMemory | _FileBackedSegment",
        manifest: SegmentManifest,
    ) -> None:
        self._shm = shm
        self.manifest = manifest
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.manifest.segment

    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - platform-specific double close
            pass

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        finally:
            with _ACTIVE_LOCK:
                _ACTIVE.discard(self.manifest.segment)

    def release(self) -> None:
        """Close the mapping and unlink the segment (full owner teardown)."""
        self.close()
        self.unlink()


def _layout(arrays: Mapping[str, np.ndarray]) -> tuple[list[ArraySpec], dict[str, np.ndarray], int]:
    """Assign every array an aligned slot; returns (specs, contiguous, total)."""
    specs: list[ArraySpec] = []
    offset = 0
    contiguous: dict[str, np.ndarray] = {}
    for key, array in arrays.items():
        view = np.ascontiguousarray(array)
        contiguous[key] = view
        offset = _aligned(offset)
        specs.append(
            ArraySpec(
                key=key,
                dtype=view.dtype.str,
                shape=tuple(int(s) for s in view.shape),
                offset=offset,
                nbytes=int(view.nbytes),
            )
        )
        offset += int(view.nbytes)
    return specs, contiguous, max(offset, 1)  # zero-byte segments are not creatable


#: Chunk width for streaming arrays into a file-backed segment: bounds the
#: transient heap per array regardless of array size.
_FILE_CHUNK_BYTES = 16 << 20


def _export_file_backed(
    specs: list[ArraySpec],
    contiguous: Mapping[str, np.ndarray],
    total: int,
    *,
    name_hint: str,
    directory: "str | Path | None",
) -> SharedArraySegment:
    root = Path(directory) if directory is not None else Path(tempfile.gettempdir())
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{name_hint}-{secrets.token_hex(6)}.seg"
    try:
        # Buffered writes, not a writable mmap: dirtying gigabytes of
        # mapped pages would count against this process's RSS until
        # writeback — the exact failure mode the file backing exists to
        # avoid.
        with open(path, "wb") as handle:
            position = 0
            for spec in specs:
                if spec.offset > position:
                    handle.write(b"\x00" * (spec.offset - position))
                    position = spec.offset
                flat = contiguous[spec.key].reshape(-1)
                step = max(1, _FILE_CHUNK_BYTES // max(1, flat.itemsize))
                for start in range(0, flat.size, step):
                    handle.write(flat[start:start + step].tobytes())
                position += spec.nbytes
            if position < total:
                handle.write(b"\x00" * (total - position))
        segment = _FileBackedSegment(path)
        with _ACTIVE_LOCK:
            _ACTIVE.add(segment.name)
        spec_tuple = tuple(specs)
        views = {
            spec.key: np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=segment.buf,
                offset=spec.offset,
            )
            for spec in spec_tuple
        }
        manifest = SegmentManifest(
            segment=segment.name,
            total_bytes=total,
            arrays=spec_tuple,
            fingerprint=fingerprint(spec_tuple, views),
            backing="file",
        )
    except BaseException:
        with _ACTIVE_LOCK:
            _ACTIVE.discard(str(path))
        try:
            path.unlink()
        except OSError:
            pass
        raise
    return SharedArraySegment(segment, manifest)


def export_arrays(
    arrays: Mapping[str, np.ndarray],
    *,
    name_hint: str = "repro",
    backing: str = "shm",
    directory: "str | Path | None" = None,
) -> SharedArraySegment:
    """Pack ``arrays`` into one new shared segment (shm- or file-backed).

    Arrays are copied once (parent → segment); the returned manifest lets
    any process rebuild zero-copy views with :func:`attach_arrays`.  Keys
    are preserved; iteration order determines layout, so the fingerprint is
    deterministic for a deterministic input mapping.

    ``backing="shm"`` (default) creates a ``multiprocessing.shared_memory``
    segment — fastest, but bounded by ``/dev/shm``.  ``backing="file"``
    writes the same aligned layout to an ordinary file under ``directory``
    (default: the system temp dir) and maps it read-only — the tier for
    mmap-storage indexes whose one shared copy must not consume RAM-backed
    tmpfs.  Workers attach both the same way.
    """
    if backing not in ("shm", "file"):
        raise ServiceError(
            f"unknown segment backing {backing!r}; expected 'shm' or 'file'"
        )
    specs, contiguous, total = _layout(arrays)
    if backing == "file":
        return _export_file_backed(
            specs, contiguous, total, name_hint=name_hint, directory=directory
        )
    name = f"{name_hint}-{secrets.token_hex(6)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    with _ACTIVE_LOCK:
        _ACTIVE.add(shm.name)
    try:
        for spec in specs:
            target = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            target[...] = contiguous[spec.key]
        spec_tuple = tuple(specs)
        views = {
            spec.key: np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            for spec in spec_tuple
        }
        manifest = SegmentManifest(
            segment=shm.name,
            total_bytes=total,
            arrays=spec_tuple,
            fingerprint=fingerprint(spec_tuple, views),
        )
    except BaseException:
        # Creation failed mid-copy: never leak the segment.
        shm.close()
        shm.unlink()
        with _ACTIVE_LOCK:
            _ACTIVE.discard(name)
        raise
    return SharedArraySegment(shm, manifest)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from the resource tracker when it would over-clean.

    Python < 3.13 registers every *attached* segment with a resource
    tracker, and a tracker unlinks everything still registered when it
    shuts down.  Which tracker matters:

    * ``multiprocessing`` children inherit the parent's tracker — their
      attach-register is a set no-op and their exit unlinks nothing, so
      unregistering here would instead erase the *owner's* registration.
      Skip.
    * A process that started its **own** tracker (``_pid`` set) would
      unlink the shared segment when it exits — destroying data the owner
      still serves.  Unregister the attachment so only the owner's
      ``unlink()`` removes the segment.  (3.13+ exposes ``track=False``
      for exactly this; this keeps 3.10–3.12 correct.)
    """
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    if tracker is None or getattr(tracker, "_pid", None) is None:
        return  # inherited (or no) tracker: registration belongs to the owner
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker not running / renamed API
        pass


def attach_arrays(
    manifest: SegmentManifest, *, verify: bool = True
) -> tuple["shared_memory.SharedMemory | _FileBackedSegment", dict[str, np.ndarray]]:
    """Map an exported segment and rebuild read-only zero-copy views.

    Handles both backings: shared-memory segments are attached by name,
    file-backed segments are mapped read-only from disk (no resource
    tracker involved — the file is just a file).

    Raises
    ------
    ServiceError
        When the segment cannot be found or its content fingerprint does
        not match the manifest (stale or torn export).
    """
    backing = getattr(manifest, "backing", "shm")
    if backing == "file":
        try:
            shm: "shared_memory.SharedMemory | _FileBackedSegment" = (
                _FileBackedSegment(manifest.segment)
            )
        except FileNotFoundError as error:
            raise ServiceError(
                f"file-backed segment {manifest.segment!r} is gone; was the "
                "service closed while workers were starting?"
            ) from error
    else:
        try:
            shm = shared_memory.SharedMemory(name=manifest.segment)
        except FileNotFoundError as error:
            raise ServiceError(
                f"shared-memory segment {manifest.segment!r} is gone; was the "
                "service closed while workers were starting?"
            ) from error
        # Workers must detach from the resource tracker (it would unlink on
        # their exit); the owner process attaching to its *own* segment must
        # not, or the create-time registration would be dropped twice.
        with _ACTIVE_LOCK:
            owner = manifest.segment in _ACTIVE
        if not owner:
            _untrack(shm)
    views: dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        views[spec.key] = view
    if verify:
        observed = fingerprint(manifest.arrays, views)
        if observed != manifest.fingerprint:
            shm.close()
            raise ServiceError(
                f"shared-memory segment {manifest.segment!r} failed its "
                f"fingerprint check ({observed} != {manifest.fingerprint}); "
                "refusing to serve from a torn or mismatched index"
            )
    return shm, views
