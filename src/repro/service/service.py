"""The concurrent query service: one shared engine, many callers.

:class:`QueryService` turns the batch engine into a long-lived server
component: a worker pool — threads over the shared engine, or spawned
processes over zero-copy shared-memory index views
(:mod:`repro.service.backends`) — executes queries against one shared
:class:`~repro.service.handle.EngineHandle`, a bounded admission budget
sheds overload with typed errors instead of unbounded queueing, and a
canonical-form result cache absorbs repeated queries.

The programmatic surface is future-based so it embeds anywhere::

    with QueryService.from_network(network, strategy="pm") as service:
        future = service.submit('FIND OUTLIERS FROM ... TOP 5;')
        result = service.result(future, timeout=5.0)

``submit`` is non-blocking: it either returns a future (admitted, cache
hit, or coalesced onto an identical in-flight request) or raises
immediately (:class:`~repro.exceptions.ServiceOverloadedError` on a full
queue, :class:`~repro.exceptions.QueryError` on a malformed query,
:class:`~repro.exceptions.ServiceClosedError` after shutdown).  The HTTP
frontend in :mod:`repro.service.http` is a thin JSON adapter over exactly
this API.

Backend-agnosticism: the service layer never touches threads or processes
directly.  It admits a request, hands the canonical query text to the
backend, and finishes the request from the backend future's done-callback
— the same code path releases the admission slot whether the query
succeeded, failed, timed out, was cancelled by a non-drain close, or died
with a crashed worker process.  That single-exit design is what makes
``close()`` drain-correct: no path can strand an admission slot.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as futures_wait
from typing import TYPE_CHECKING, Sequence

from repro.core.results import OutlierResult
from repro.hin.network import HeterogeneousInformationNetwork
from repro.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.query.ast import Query
from repro.service.admission import AdmissionController
from repro.service.adaptive import Reindexer, WorkloadRecorder
from repro.service.backends import ExecutionBackend, make_backend
from repro.service.cache import ResultCache, canonical_query_key
from repro.service.config import ServiceConfig
from repro.service.handle import EngineHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.index import MetaPathIndex
    from repro.engine.resilience import ResiliencePolicy

__all__ = ["QueryService"]


def _resolve(
    future: "Future[OutlierResult]",
    *,
    result: OutlierResult | None = None,
    error: BaseException | None = None,
) -> None:
    """Resolve a future exactly once; later attempts are no-ops.

    A request can race between a worker finishing it, a non-drain close
    abandoning it, and a caller cancelling it — whichever resolves first
    wins; the others must not crash on ``InvalidStateError``.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except Exception:  # InvalidStateError: the race was lost, result stands
        pass


class QueryService:
    """Admission-controlled, cached, concurrent execution of outlier queries.

    Parameters
    ----------
    handle:
        The shared engine (network + index + measure), already warmed.
    config:
        Deployment knobs; see :class:`~repro.service.config.ServiceConfig`.
        ``config.backend`` selects thread or process execution — results
        are byte-identical either way.

    Notes
    -----
    Lifecycle: the worker pool starts immediately (the process backend
    additionally exports the index into shared memory and spawns workers
    here); call :meth:`close` (or use the service as a context manager) to
    drain and stop it.  After ``close``, :meth:`submit` raises
    :class:`~repro.exceptions.ServiceClosedError`; requests admitted before
    the close still complete, their admission slots are released, and the
    process backend's shared-memory segment is unlinked.
    """

    def __init__(
        self, handle: EngineHandle, config: ServiceConfig | None = None
    ) -> None:
        self.handle = handle
        self.config = config if config is not None else ServiceConfig()
        self.admission = AdmissionController(self.config.capacity)
        self.cache = ResultCache(
            max_entries=self.config.cache_max_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
        )
        # Attach the shared sub-path cache *before* the backend spawns:
        # the process backend ships the engine spec to its workers, and the
        # cache budget travels with it so every worker builds its own.
        if self.config.subpath_cache_mb > 0:
            handle.attach_subpath_cache(self.config.subpath_cache_mb)
        self.recorder: WorkloadRecorder | None = None
        self.reindexer: Reindexer | None = None
        if self.config.adaptive:
            concrete = handle._concrete_strategy()
            if getattr(concrete, "name", "custom") != "spm":
                raise ServiceError(
                    "adaptive re-indexing requires the spm strategy (the "
                    "index it re-plans), but this engine serves "
                    f"{getattr(concrete, 'name', 'custom')!r}"
                )
            self.recorder = WorkloadRecorder(
                max_entries=self.config.admission_log_entries,
                spill_path=self.config.admission_log_path,
            )
        self.backend: ExecutionBackend = make_backend(
            handle,
            backend=self.config.backend,
            workers=self.config.workers,
            timeout_seconds=self.config.timeout_seconds,
            segment_backing=self.config.segment_backing,
            segment_dir=self.config.storage_dir,
        )
        if self.config.adaptive:
            self.reindexer = Reindexer(
                self,
                interval_seconds=self.config.reindex_interval_seconds,
                min_new_queries=self.config.reindex_min_queries,
                max_index_mb=self.config.max_index_mb,
            )
            self.reindexer.start()
        self._lock = threading.Lock()
        self._closed = False
        self._draining = False
        #: Identical queries submitted while one is already executing share
        #: its future instead of burning another admission slot.
        self._pending: dict[str, Future] = {}
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._coalesced = 0
        # Exponential moving average of request execution latency, the
        # basis of the retry-after hint attached to shed requests.
        self._latency_ewma: float | None = None

    @classmethod
    def from_network(
        cls,
        network: HeterogeneousInformationNetwork,
        config: ServiceConfig | None = None,
        *,
        strategy: str = "pm",
        measure: str = "netout",
        combine: str = "score",
        index=None,
        resilience: "ResiliencePolicy | None" = None,
        row_cache_rows: int = 4096,
    ) -> "QueryService":
        """Build the engine handle and the service in one call.

        ``index`` forwards a prebuilt :class:`~repro.engine.index.MetaPathIndex`
        (e.g. one attached from an out-of-core build via
        :func:`repro.engine.index_io.load_index_mmap`) so the handle serves
        it instead of rebuilding in RAM.
        """
        config = config if config is not None else ServiceConfig()
        handle = EngineHandle(
            network,
            strategy=strategy,
            measure=measure,
            combine=combine,
            index=index,
            resilience=resilience,
            row_cache_rows=row_cache_rows,
            collect_stats=config.collect_stats,
        )
        return cls(handle, config)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, query: str | Query) -> "Future[OutlierResult]":
        """Submit one query; returns a future resolving to its result.

        Order of gates, cheapest first:

        1. **Canonicalize** — malformed queries raise
           :class:`~repro.exceptions.QueryError` here, costing nothing.
        2. **Cache** — a fresh same-version entry resolves immediately.
        3. **Coalesce** — an identical in-flight query shares its future.
        4. **Admit** — claim a bounded slot or shed with
           :class:`~repro.exceptions.ServiceOverloadedError`.
        """
        key = canonical_query_key(query)
        # Feed the adaptive workload log before any other gate: cache hits
        # and coalesced submissions are *demand* too — a vertex served
        # entirely from the result cache today still deserves index rows
        # when the cache churns tomorrow.  Recording is O(1) under the
        # recorder's own lock; a well-formed query that is then shed or
        # refused contributes one (negligible) phantom log entry.
        if self.recorder is not None and not self._closed and not self._draining:
            self.recorder.record(key)
        with self._lock:
            if self._closed or self._draining:
                raise ServiceClosedError(
                    "the query service is draining; no new requests"
                    if self._draining and not self._closed
                    else "the query service has been shut down; no new requests"
                )
            self._submitted += 1
            cached = self.cache.get(key, version=self.handle.version)
            if cached is not None:
                done: "Future[OutlierResult]" = Future()
                done.set_result(cached)
                # Frontends report whether an answer came from the result
                # cache.  `future.done()` cannot tell them: a fast backend
                # can resolve a fresh future before the caller samples it.
                done.from_cache = True
                return done
            pending = self._pending.get(key)
            if pending is not None:
                self._coalesced += 1
                return pending
            self.admission.admit(retry_after_seconds=self._retry_after_hint())
            future: "Future[OutlierResult]" = Future()
            self._pending[key] = future
        # Backend interaction happens OUTSIDE the service lock: the backend
        # takes its own lock, and its done-callbacks re-enter _finish (which
        # takes ours) — calling across while holding either would deadlock.
        started = time.monotonic()
        try:
            backend_future = self.backend.submit(key)
        except BaseException as error:
            # The backend refused (closed race, all workers dead): undo the
            # admission, fail coalesced waiters, surface to this caller.
            with self._lock:
                self._failed += 1
                self._pending.pop(key, None)
            self.admission.release()
            _resolve(future, error=error)
            raise
        backend_future.add_done_callback(
            lambda done_future: self._finish(key, started, future, done_future)
        )
        return future

    def execute(
        self, query: str | Query, *, timeout: float | None = None
    ) -> OutlierResult:
        """Synchronous convenience: ``submit`` then wait for the result."""
        return self.result(self.submit(query), timeout=timeout)

    def execute_many(
        self, queries: Sequence[str | Query], *, timeout: float | None = None
    ) -> list[OutlierResult]:
        """Run a batch through the service, in input order.

        Unlike :meth:`submit`, a full admission queue does not shed here —
        the batch *is* the backpressure: when the service is saturated the
        next submission waits for one of this batch's own in-flight queries
        to finish and retries.  Errors of individual queries re-raise when
        their result is collected.
        """
        futures: dict[int, "Future[OutlierResult]"] = {}
        for position, query in enumerate(queries):
            while True:
                try:
                    futures[position] = self.submit(query)
                    break
                except ServiceOverloadedError:
                    ours = [f for f in futures.values() if not f.done()]
                    if ours:
                        futures_wait(ours, return_when=FIRST_COMPLETED)
                    else:
                        # Saturated by *other* callers: brief backoff.
                        time.sleep(0.005)
        return [
            futures[position].result(timeout=timeout)
            for position in range(len(futures))
        ]

    @staticmethod
    def result(
        future: "Future[OutlierResult]", *, timeout: float | None = None
    ) -> OutlierResult:
        """Wait for a submitted query's result (re-raising its error)."""
        return future.result(timeout=timeout)

    def invalidate_cache(self) -> int:
        """Drop all cached results (e.g. after an out-of-band data change)."""
        return self.cache.invalidate()

    # ------------------------------------------------------------------
    # Adaptive indexing
    # ------------------------------------------------------------------
    def apply_index_swap(self, index: "MetaPathIndex") -> int:
        """Hot-swap the served SPM index, then roll it out to the backend.

        Two halves, in the only safe order: the parent handle swaps first
        (:meth:`~repro.service.handle.EngineHandle.swap_index` bumps the
        network version, which invalidates old result-cache entries), then
        the backend adopts it — a no-op for threads, a shared-memory
        segment generation roll for processes.  In the overlap window both
        engines answer, and both answers are byte-identical by
        construction.  Returns the new network version.
        """
        version = self.handle.swap_index(index)
        self.backend.refresh_engine()
        return version

    def reindex_now(self) -> bool:
        """Run one adaptive re-index cycle synchronously (operator hook).

        Returns True when a swap landed; raises
        :class:`~repro.exceptions.ServiceError` when the service was not
        configured with ``adaptive=True``.
        """
        if self.reindexer is None:
            raise ServiceError(
                "this service was not configured with adaptive=True"
            )
        return self.reindexer.run_once()

    # ------------------------------------------------------------------
    # Completion (single exit path for every submitted request)
    # ------------------------------------------------------------------
    def _finish(
        self,
        key: str,
        started: float,
        future: "Future[OutlierResult]",
        backend_future: "Future[OutlierResult]",
    ) -> None:
        result: OutlierResult | None = None
        error: BaseException | None = None
        if backend_future.cancelled():
            error = ServiceClosedError(
                "the query service shut down before this request ran"
            )
        else:
            error = backend_future.exception()
            if error is None:
                result = backend_future.result()
        if result is not None:
            self.cache.put(key, result, version=self.handle.version)
        elapsed = time.monotonic() - started
        with self._lock:
            self._pending.pop(key, None)
            if error is None:
                self._completed += 1
                self._latency_ewma = (
                    elapsed
                    if self._latency_ewma is None
                    else 0.8 * self._latency_ewma + 0.2 * elapsed
                )
            else:
                self._failed += 1
        # Every admitted request reaches exactly this release, on success,
        # failure, timeout, crash-retry exhaustion, and non-drain close —
        # the drain-correctness invariant close() relies on.
        self.admission.release()
        _resolve(future, result=result, error=error)

    def _retry_after_hint(self) -> float:
        """Expected wait for a freed slot: queue drain time at recent pace."""
        latency = self._latency_ewma if self._latency_ewma is not None else 0.05
        waiting = max(1, self.admission.in_flight - self.config.workers + 1)
        return max(0.01, latency * waiting / self.config.workers)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def draining(self) -> bool:
        """True once a graceful drain has begun (and until fully closed)."""
        return self._draining and not self._closed

    def begin_drain(self) -> None:
        """Stop accepting new requests; keep answering health checks.

        The liveness/readiness split a replica router needs: after this
        call ``/healthz`` reports ``503 {"status": "draining"}`` (the
        router removes the replica from rotation), :meth:`submit` raises
        :class:`~repro.exceptions.ServiceClosedError`, but in-flight
        requests keep executing and the HTTP socket stays up until
        :meth:`close` — so the queue drains *visibly* instead of the
        socket dying mid-request.  Idempotent; a no-op after ``close``.
        """
        with self._lock:
            self._draining = True

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting requests, settle in-flight ones, tear down workers.

        Idempotent.  With ``drain=True`` (the default) every in-flight
        request completes, its future resolves, and its admission slot is
        released **before** workers are torn down; with ``drain=False``
        queued-but-unstarted work resolves with
        :class:`~repro.exceptions.ServiceClosedError` (or cancellation)
        instead of executing.  Either way the process backend unlinks its
        shared-memory segment before this returns.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Stop the re-indexer before the backend: a swap must never race a
        # teardown (refresh_engine refuses once closing anyway).
        if self.reindexer is not None:
            self.reindexer.stop()
        self.backend.close(drain=drain)
        if self.recorder is not None:
            self.recorder.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        """One JSON-safe snapshot of every service counter.

        Shape: ``{"service": ..., "admission": ..., "cache": ...,
        "engine": ..., "backend": ...}`` — the HTTP frontend returns it
        verbatim from ``GET /stats``.  Each section is captured under its
        owner's lock, so every section is internally consistent.
        """
        with self._lock:
            service = {
                "backend": self.config.backend,
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "timeout_seconds": self.config.timeout_seconds,
                "closed": self._closed,
                "draining": self._draining and not self._closed,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "coalesced": self._coalesced,
                "pending": len(self._pending),
                "latency_ewma_seconds": self._latency_ewma,
            }
        engine = {
            "fingerprint": self.handle.fingerprint,
            "network_version": self.handle.version,
            "index_size_bytes": self.handle.index_size_bytes(),
            # Index metadata (version, row coverage, sub-path cache hit
            # rate, last-reindex stamp): the observability surface the
            # router's probe and /stats consumers read.
            "index": self.handle.index_metadata(),
        }
        if self.handle.subpath_cache is not None:
            subpath = self.handle.subpath_cache.snapshot()
            engine["subpath_cache_hit_rate"] = subpath["hit_rate"]
            engine["subpath_cache"] = subpath
        if self.handle.row_cache is not None:
            # One-lock snapshot: hit rate and row count from the same moment.
            row_cache = self.handle.row_cache.snapshot()
            engine["row_cache_hit_rate"] = row_cache["hit_rate"]
            engine["row_cache_rows"] = row_cache["rows"]
            engine["row_cache"] = row_cache
        snapshot = {
            "service": service,
            "admission": self.admission.snapshot(),
            "cache": self.cache.snapshot(),
            "engine": engine,
            "backend": self.backend.stats(),
        }
        if self.recorder is not None or self.reindexer is not None:
            snapshot["adaptive"] = {
                "recorder": (
                    self.recorder.stats() if self.recorder is not None else None
                ),
                "reindexer": (
                    self.reindexer.stats() if self.reindexer is not None else None
                ),
            }
        return snapshot
