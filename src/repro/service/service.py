"""The concurrent query service: one shared engine, many callers.

:class:`QueryService` turns the batch engine into a long-lived server
component: a fixed pool of worker threads executes queries against one
shared :class:`~repro.service.handle.EngineHandle`, a bounded admission
budget sheds overload with typed errors instead of unbounded queueing, and
a canonical-form result cache absorbs repeated queries.

The programmatic surface is future-based so it embeds anywhere::

    with QueryService.from_network(network, strategy="pm") as service:
        future = service.submit('FIND OUTLIERS FROM ... TOP 5;')
        result = service.result(future, timeout=5.0)

``submit`` is non-blocking: it either returns a future (admitted, cache
hit, or coalesced onto an identical in-flight request) or raises
immediately (:class:`~repro.exceptions.ServiceOverloadedError` on a full
queue, :class:`~repro.exceptions.QueryError` on a malformed query,
:class:`~repro.exceptions.ServiceClosedError` after shutdown).  The HTTP
frontend in :mod:`repro.service.http` is a thin JSON adapter over exactly
this API.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.core.results import OutlierResult
from repro.engine.deadline import Deadline
from repro.hin.network import HeterogeneousInformationNetwork
from repro.exceptions import ReproError, ServiceClosedError
from repro.query.ast import Query
from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache, canonical_query_key
from repro.service.config import ServiceConfig
from repro.service.handle import EngineHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.resilience import ResiliencePolicy

__all__ = ["QueryService"]


def _resolve(
    future: "Future[OutlierResult]",
    *,
    result: OutlierResult | None = None,
    error: BaseException | None = None,
) -> None:
    """Resolve a future exactly once; later attempts are no-ops.

    A request can race between a worker finishing it, a non-drain close
    abandoning it, and a caller cancelling it — whichever resolves first
    wins; the others must not crash on ``InvalidStateError``.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except Exception:  # InvalidStateError: the race was lost, result stands
        pass


class QueryService:
    """Admission-controlled, cached, concurrent execution of outlier queries.

    Parameters
    ----------
    handle:
        The shared engine (network + index + measure), already warmed.
    config:
        Deployment knobs; see :class:`~repro.service.config.ServiceConfig`.

    Notes
    -----
    Lifecycle: the worker pool starts immediately; call :meth:`close` (or
    use the service as a context manager) to drain and stop it.  After
    ``close``, :meth:`submit` raises
    :class:`~repro.exceptions.ServiceClosedError`; requests admitted before
    the close still complete.
    """

    def __init__(
        self, handle: EngineHandle, config: ServiceConfig | None = None
    ) -> None:
        self.handle = handle
        self.config = config if config is not None else ServiceConfig()
        self.admission = AdmissionController(self.config.capacity)
        self.cache = ResultCache(
            max_entries=self.config.cache_max_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        self._lock = threading.Lock()
        self._closed = False
        #: Identical queries submitted while one is already executing share
        #: its future instead of burning another admission slot.
        self._pending: dict[str, Future] = {}
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._coalesced = 0
        # Exponential moving average of request execution latency, the
        # basis of the retry-after hint attached to shed requests.
        self._latency_ewma: float | None = None

    @classmethod
    def from_network(
        cls,
        network: HeterogeneousInformationNetwork,
        config: ServiceConfig | None = None,
        *,
        strategy: str = "pm",
        measure: str = "netout",
        combine: str = "score",
        resilience: "ResiliencePolicy | None" = None,
        row_cache_rows: int = 4096,
    ) -> "QueryService":
        """Build the engine handle and the service in one call."""
        config = config if config is not None else ServiceConfig()
        handle = EngineHandle(
            network,
            strategy=strategy,
            measure=measure,
            combine=combine,
            resilience=resilience,
            row_cache_rows=row_cache_rows,
            collect_stats=config.collect_stats,
        )
        return cls(handle, config)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, query: str | Query) -> "Future[OutlierResult]":
        """Submit one query; returns a future resolving to its result.

        Order of gates, cheapest first:

        1. **Canonicalize** — malformed queries raise
           :class:`~repro.exceptions.QueryError` here, costing nothing.
        2. **Cache** — a fresh same-version entry resolves immediately.
        3. **Coalesce** — an identical in-flight query shares its future.
        4. **Admit** — claim a bounded slot or shed with
           :class:`~repro.exceptions.ServiceOverloadedError`.
        """
        key = canonical_query_key(query)
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "the query service has been shut down; no new requests"
                )
            self._submitted += 1
            cached = self.cache.get(key, version=self.handle.version)
            if cached is not None:
                done: "Future[OutlierResult]" = Future()
                done.set_result(cached)
                return done
            pending = self._pending.get(key)
            if pending is not None:
                self._coalesced += 1
                return pending
            self.admission.admit(retry_after_seconds=self._retry_after_hint())
            future: "Future[OutlierResult]" = Future()
            self._pending[key] = future
            self._pool.submit(self._run, key, query, future)
            return future

    def execute(
        self, query: str | Query, *, timeout: float | None = None
    ) -> OutlierResult:
        """Synchronous convenience: ``submit`` then wait for the result."""
        return self.result(self.submit(query), timeout=timeout)

    @staticmethod
    def result(
        future: "Future[OutlierResult]", *, timeout: float | None = None
    ) -> OutlierResult:
        """Wait for a submitted query's result (re-raising its error)."""
        return future.result(timeout=timeout)

    def invalidate_cache(self) -> int:
        """Drop all cached results (e.g. after an out-of-band data change)."""
        return self.cache.invalidate()

    # ------------------------------------------------------------------
    # Worker body
    # ------------------------------------------------------------------
    def _run(
        self, key: str, query: str | Query, future: "Future[OutlierResult]"
    ) -> None:
        started = time.monotonic()
        try:
            deadline = (
                Deadline(self.config.timeout_seconds)
                if self.config.timeout_seconds is not None
                else None
            )
            result = self.handle.execute(query, deadline=deadline)
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            with self._lock:
                self._failed += 1
                self._pending.pop(key, None)
            self.admission.release()
            _resolve(future, error=error)
            return
        self.cache.put(key, result, version=self.handle.version)
        elapsed = time.monotonic() - started
        with self._lock:
            self._completed += 1
            self._pending.pop(key, None)
            self._latency_ewma = (
                elapsed
                if self._latency_ewma is None
                else 0.8 * self._latency_ewma + 0.2 * elapsed
            )
        self.admission.release()
        _resolve(future, result=result)

    def _retry_after_hint(self) -> float:
        """Expected wait for a freed slot: queue drain time at recent pace."""
        latency = self._latency_ewma if self._latency_ewma is not None else 0.05
        waiting = max(1, self.admission.in_flight - self.config.workers + 1)
        return max(0.01, latency * waiting / self.config.workers)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting requests; optionally wait for in-flight ones.

        Idempotent.  With ``drain=False`` queued-but-unstarted work is
        cancelled (their futures raise ``CancelledError``).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            abandoned = [] if drain else list(self._pending.values())
        self._pool.shutdown(wait=drain, cancel_futures=not drain)
        # Without a drain, queued-but-unstarted requests never reach _run;
        # fail their futures so no caller blocks forever on a dead service.
        for future in abandoned:
            _resolve(
                future,
                error=ServiceClosedError(
                    "the query service shut down before this request ran"
                ),
            )

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        """One JSON-safe snapshot of every service counter.

        Shape: ``{"service": ..., "admission": ..., "cache": ...,
        "engine": ...}`` — the HTTP frontend returns it verbatim from
        ``GET /stats``.
        """
        with self._lock:
            service = {
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "timeout_seconds": self.config.timeout_seconds,
                "closed": self._closed,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "coalesced": self._coalesced,
                "pending": len(self._pending),
                "latency_ewma_seconds": self._latency_ewma,
            }
        engine = {
            "fingerprint": self.handle.fingerprint,
            "network_version": self.handle.version,
            "index_size_bytes": self.handle.index_size_bytes(),
        }
        if self.handle.row_cache is not None:
            engine["row_cache_hit_rate"] = self.handle.row_cache.hit_rate
            engine["row_cache_rows"] = self.handle.row_cache.cached_rows
        return {
            "service": service,
            "admission": self.admission.snapshot(),
            "cache": self.cache.snapshot(),
            "engine": engine,
        }
