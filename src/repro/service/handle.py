"""A shared, long-lived engine: one network + index, many worker threads.

The batch library builds one :class:`~repro.engine.detector.OutlierDetector`
per caller and throws it away; a service cannot afford that — PM/SPM index
construction is exactly the cost the paper's Section 6 works to amortize.
:class:`EngineHandle` loads a network and builds its strategy **once**, then
shares the immutable pieces (adjacency matrices, index matrices, measure)
across every worker thread.

Thread-safety contract
----------------------
Everything mutable is per-request: execution statistics are freshly
allocated inside each ``execute`` call, and deadlines live in
thread-local scopes (:mod:`repro.engine.deadline`).  The shared pieces are
read-only after :meth:`warm`, which forces every lazy structure — adjacency
matrices rebuilt on first access, lazily-built ladder rungs — to
materialize before the first concurrent request can race on it.  The one
deliberately shared mutable structure, the optional
:class:`~repro.engine.caching.CachingStrategy` row cache, carries its own
lock.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.core.measures import Measure
from repro.core.results import OutlierResult
from repro.engine.caching import CachingStrategy, SubpathCache
from repro.engine.detector import OutlierDetector
from repro.engine.executor import BatchExecution
from repro.engine.index import MetaPathIndex
from repro.engine.strategies import MaterializationStrategy, SPMStrategy
from repro.exceptions import ServiceError
from repro.hin.network import HeterogeneousInformationNetwork
from repro.query.ast import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.deadline import Deadline
    from repro.engine.resilience import ResiliencePolicy

__all__ = ["EngineHandle"]


class EngineHandle:
    """One warmed engine shared by a pool of worker threads.

    Parameters
    ----------
    network:
        The network to serve.  The handle snapshots its version; results
        cached against an older version are invalidated automatically.
    strategy, measure, combine, index, spm_workload, spm_threshold,
    resilience:
        Forwarded to :class:`~repro.engine.detector.OutlierDetector` — the
        handle adds sharing and warm-up, not new execution semantics.
    row_cache_rows:
        When positive, wrap the strategy in a (thread-safe) LRU row cache
        of this many ``(meta-path, vertex)`` rows, so hub vertices touched
        by many requests materialize once.  ``0`` disables the row cache.
    collect_stats:
        Attach per-phase stats to each result (per-request objects, safe
        under concurrency).

    Examples
    --------
    >>> from repro.datagen.fixtures import figure1_network
    >>> handle = EngineHandle(figure1_network(), strategy="pm")
    >>> result = handle.execute(
    ...     'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    ...     'JUDGED BY author.paper.venue TOP 3;')
    >>> len(result) <= 3
    True
    """

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        *,
        strategy: str | MaterializationStrategy = "pm",
        measure: Measure | str = "netout",
        combine: str = "score",
        index=None,
        spm_workload: Sequence[str | Query] | None = None,
        spm_threshold: float = 0.01,
        resilience: "ResiliencePolicy | None" = None,
        row_cache_rows: int = 4096,
        collect_stats: bool = True,
        subpath_cache_mb: float = 0.0,
    ) -> None:
        self.network = network
        # Construction record: the process backend ships these (minus the
        # network/index, which travel as shared-memory buffers) to worker
        # processes so they can rebuild an equivalent handle.
        self._init_spec = {
            "strategy": strategy,
            "measure": measure,
            "combine": combine,
            "resilience": resilience,
            "row_cache_rows": row_cache_rows,
            "collect_stats": collect_stats,
            "subpath_cache_mb": subpath_cache_mb,
        }
        base = OutlierDetector(
            network,
            strategy=strategy,
            measure=measure,
            index=index,
            spm_workload=spm_workload,
            spm_threshold=spm_threshold,
            combine=combine,
            collect_stats=collect_stats,
            resilience=resilience,
        )
        self.row_cache: CachingStrategy | None = None
        if row_cache_rows > 0:
            # Re-wrap the already-built strategy: the index is not rebuilt,
            # only the (locked) LRU row cache is layered in front of it.
            self.row_cache = CachingStrategy(
                base.strategy, max_rows=row_cache_rows
            )
            base = OutlierDetector(
                network,
                strategy=self.row_cache,
                measure=measure,
                combine=combine,
                collect_stats=collect_stats,
                resilience=resilience,
            )
        self.detector = base
        self._combine = combine
        self._version = network.version
        #: Counts completed hot-swaps; 0 for the index the handle was born
        #: with.  The process backend reuses the same counter to tag shm
        #: segment generations.
        self.index_generation = 0
        self.last_swap_unix: float | None = None
        self.subpath_cache: SubpathCache | None = None
        self.warm()
        if subpath_cache_mb > 0:
            self.attach_subpath_cache(subpath_cache_mb)

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Force every lazily-built shared structure to materialize now.

        Adjacency matrices rebuild on first access and the resilience
        ladder builds its active rung on first query; both are benign
        single-threaded but race under a worker pool.  Warming from the
        loading thread makes the shared state effectively immutable before
        the first concurrent request arrives.
        """
        schema = self.network.schema
        for edge_type in schema.edge_types:
            self.network.adjacency(edge_type.source, edge_type.target)
        # A FallbackStrategy builds its strongest viable rung lazily; force
        # that build (and any demotions it causes) to happen here, once.
        # The ladder may sit beneath the row-cache wrapper, so walk inward.
        strategy = self.detector.strategy
        while strategy is not None:
            build_active = getattr(strategy, "_active_strategy", None)
            if callable(build_active):
                build_active()
            strategy = getattr(strategy, "inner", None)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The served network's mutation counter (cache invalidation key)."""
        return self.network.version

    @property
    def stale(self) -> bool:
        """True once the network mutated after this handle was built."""
        return self.network.version != self._version

    @property
    def fingerprint(self) -> str:
        """Execution-semantics identity: two handles with equal fingerprints
        and versions return identical results for the same query."""
        strategy_name = getattr(self.detector.strategy, "name", "custom")
        return f"{strategy_name}/{self.detector.measure_name}/{self._combine}"

    @property
    def measure_name(self) -> str:
        return self.detector.measure_name

    def index_size_bytes(self) -> int:
        """Bytes held by the shared index (plus any row cache)."""
        return self.detector.index_size_bytes()

    # ------------------------------------------------------------------
    # Adaptive indexing: sub-path cache + atomic index hot-swap
    # ------------------------------------------------------------------
    def attach_subpath_cache(self, megabytes: float) -> None:
        """Attach a shared length-2 sub-path product cache to the engine.

        Idempotent: a second call (or ``megabytes <= 0``) is a no-op.  The
        cache is installed on the *concrete* strategy instance so every
        blocked materialization — including miss traversal inside SPM —
        reuses segment products across concurrent queries.
        """
        if megabytes <= 0 or self.subpath_cache is not None:
            return
        self.subpath_cache = SubpathCache(
            max_bytes=int(megabytes * 1024 * 1024)
        )
        self._init_spec["subpath_cache_mb"] = megabytes
        self._concrete_strategy().subpath_cache = self.subpath_cache

    def swap_index(self, index: MetaPathIndex) -> int:
        """Atomically replace the served SPM index with ``index``.

        The hot-swap protocol, in publish-safe order:

        1. Every strategy in the *old* chain (row-cache wrapper, ladder
           rungs, concrete strategy) is marked stale-tolerant, so in-flight
           queries finish on the old index instead of tripping the
           staleness guard when the version moves.
        2. The network version is bumped — from this instant the result
           cache treats old-version entries as invalid, and the sub-path
           cache clears itself on first touch.  (Caching an old-index
           result under the new version during the overlap window is
           harmless: scores are byte-identical by construction.)
        3. A fresh :class:`SPMStrategy` chain is built against the new
           version and published with one attribute assignment — readers
           see either the whole old engine or the whole new one, never a
           mix.

        Only meaningful for SPM serving (the adaptive loop's target);
        raises :class:`~repro.exceptions.ServiceError` otherwise.  Returns
        the new network version.
        """
        concrete = self._concrete_strategy()
        if not isinstance(concrete, SPMStrategy):
            raise ServiceError(
                "index hot-swap requires the spm strategy, but this engine "
                f"serves {getattr(concrete, 'name', 'custom')!r}"
            )
        strategy = self.detector.strategy
        while strategy is not None:
            if hasattr(strategy, "_allow_stale"):
                strategy._allow_stale = True
            build_active = getattr(strategy, "_active_strategy", None)
            if callable(build_active):
                rung = build_active()
                if hasattr(rung, "_allow_stale"):
                    rung._allow_stale = True
            strategy = getattr(strategy, "inner", None)
        version = self.network.bump_version()
        replacement = SPMStrategy(self.network, index=index)
        replacement.subpath_cache = self.subpath_cache
        chain: MaterializationStrategy = replacement
        row_cache: CachingStrategy | None = None
        if self._init_spec["row_cache_rows"] > 0:
            row_cache = CachingStrategy(
                replacement, max_rows=self._init_spec["row_cache_rows"]
            )
            chain = row_cache
        detector = OutlierDetector(
            self.network,
            strategy=chain,
            measure=self._init_spec["measure"],
            combine=self._init_spec["combine"],
            collect_stats=self._init_spec["collect_stats"],
            resilience=self._init_spec["resilience"],
        )
        # Atomic publish: one attribute write swaps the whole engine.
        self.detector = detector
        self.row_cache = row_cache
        self._version = version
        self.index_generation += 1
        self.last_swap_unix = time.time()
        return version

    def index_metadata(self) -> dict:
        """JSON-ready description of the served index for observability.

        ``row_coverage`` is the fraction of all possible length-2 rows
        (every legal length-2 meta-path × its source-type vertex count)
        the index can answer by lookup: 1.0 for PM, the selected fraction
        for SPM, ``None`` for unindexed strategies.
        """
        concrete = self._concrete_strategy()
        index = getattr(concrete, "index", None)
        metadata = {
            "strategy": getattr(concrete, "name", "custom"),
            "network_version": self.network.version,
            "generation": self.index_generation,
            "last_swap_unix": self.last_swap_unix,
            "coverage": None,
            "row_coverage": None,
            "subpath_cache": (
                self.subpath_cache.snapshot()
                if self.subpath_cache is not None
                else None
            ),
        }
        if index is not None:
            coverage = index.coverage_summary()
            possible = sum(
                self.network.num_vertices(types[0])
                for types in self.network.schema.length2_metapaths()
            )
            metadata["coverage"] = coverage
            metadata["row_coverage"] = (
                coverage["rows"] / possible if possible else 0.0
            )
        return metadata

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, query: str | Query, *, deadline: "Deadline | None" = None
    ) -> OutlierResult:
        """Run one query against the shared engine (any thread)."""
        return self.detector.detect(query, deadline=deadline)

    def execute_many(self, queries: Sequence[str | Query]) -> BatchExecution:
        """Run a batch against the shared engine (any thread)."""
        return self.detector.detect_many(queries)

    # ------------------------------------------------------------------
    # Shared-memory export / attach (process backend)
    # ------------------------------------------------------------------
    def _concrete_strategy(self) -> MaterializationStrategy:
        """The strategy actually answering queries right now.

        Unwraps the row-cache layer and, for a resilience ladder, forces
        and returns the active rung — the one whose index (if any) is worth
        shipping to workers.
        """
        strategy = self.detector.strategy
        while True:
            if isinstance(strategy, CachingStrategy):
                strategy = strategy.inner
                continue
            build_active = getattr(strategy, "_active_strategy", None)
            if callable(build_active):
                strategy = build_active()
                continue
            return strategy

    def export_shared(self) -> "tuple[dict, dict]":
        """Flatten the warmed engine into ``(spec, arrays)``.

        ``spec`` is a picklable description (schema, vertex registries,
        array layout, detector settings); ``arrays`` maps names to the CSR
        buffers of every adjacency matrix and — when the active strategy is
        indexed — every index matrix.  :meth:`from_shared` inverts this in
        a worker process over shared-memory views of the same arrays.

        A ladder (``resilience.allow_degraded``) exports its **active
        rung**: workers serve the concrete strategy the parent settled on
        and do not re-run per-worker demotion (see ``docs/service.md``).
        """
        arrays: dict = {}
        adjacency_entries: list[dict] = []
        schema = self.network.schema
        seen: set[tuple[str, str]] = set()
        for edge_type in schema.edge_types:
            pair = (edge_type.source, edge_type.target)
            if pair in seen:
                continue
            seen.add(pair)
            matrix = self.network.adjacency(*pair)
            # No-op when already canonical; guarantees the attach side may
            # mark its read-only views canonical (see engine.index).
            matrix.sum_duplicates()
            prefix = f"adj:{pair[0]}:{pair[1]}"
            arrays[f"{prefix}:data"] = matrix.data
            arrays[f"{prefix}:indices"] = matrix.indices
            arrays[f"{prefix}:indptr"] = matrix.indptr
            adjacency_entries.append(
                {
                    "source": pair[0],
                    "target": pair[1],
                    "shape": [int(s) for s in matrix.shape],
                    "prefix": prefix,
                }
            )

        concrete = self._concrete_strategy()
        index = getattr(concrete, "index", None)
        index_manifest = None
        if index is not None:
            index_manifest, index_arrays = index.export_arrays()
            arrays.update(index_arrays)

        spec = {
            "schema": schema,
            "names": {t: self.network.vertex_names(t) for t in schema.vertex_types},
            "attributes": {
                t: self.network.vertex_attributes(t) for t in schema.vertex_types
            },
            "adjacency": adjacency_entries,
            "index_manifest": index_manifest,
            "strategy": getattr(concrete, "name", "baseline"),
            "measure": self._init_spec["measure"],
            "combine": self._init_spec["combine"],
            "resilience": self._init_spec["resilience"],
            "row_cache_rows": self._init_spec["row_cache_rows"],
            "collect_stats": self._init_spec["collect_stats"],
            "subpath_cache_mb": self._init_spec["subpath_cache_mb"],
            "num_edges": self.network.num_edges(),
            "version": self.network.version,
            "fingerprint": self.fingerprint,
        }
        # Fail fast in the parent if anything in the spec cannot cross a
        # spawn boundary (an unpicklable custom measure or policy would
        # otherwise kill every worker at start-up with a cryptic error).
        import pickle

        from repro.exceptions import ServiceError

        try:
            pickle.dumps(spec)
        except Exception as error:
            raise ServiceError(
                "engine spec is not picklable for the process backend "
                f"({error}); custom measures/policies must be importable "
                "module-level classes"
            ) from error
        return spec, arrays

    @classmethod
    def from_shared(cls, spec: dict, views: "dict") -> "EngineHandle":
        """Rebuild a serving handle from :meth:`export_shared` output.

        ``views`` holds (typically shared-memory, read-only) arrays under
        the names assigned by :meth:`export_shared`; all CSR matrices are
        reconstructed as zero-copy wrappers over those buffers.
        """
        from scipy import sparse

        from repro.engine.index import MetaPathIndex, _mark_canonical
        from repro.hin.network import HeterogeneousInformationNetwork

        adjacency = {}
        for entry in spec["adjacency"]:
            prefix = entry["prefix"]
            shape = tuple(int(s) for s in entry["shape"])
            data = views[f"{prefix}:data"]
            matrix = sparse.csr_matrix(shape, dtype=data.dtype)
            matrix.data = data
            matrix.indices = views[f"{prefix}:indices"]
            matrix.indptr = views[f"{prefix}:indptr"]
            _mark_canonical(matrix)
            adjacency[(entry["source"], entry["target"])] = matrix
        network = HeterogeneousInformationNetwork.from_prebuilt(
            spec["schema"],
            spec["names"],
            spec["attributes"],
            adjacency,
            num_edges=spec["num_edges"],
            version=spec["version"],
        )
        index = None
        if spec["index_manifest"] is not None:
            index = MetaPathIndex.from_arrays(spec["index_manifest"], views)
        return cls(
            network,
            strategy=spec["strategy"],
            measure=spec["measure"],
            combine=spec["combine"],
            index=index,
            resilience=spec["resilience"],
            row_cache_rows=spec["row_cache_rows"],
            collect_stats=spec["collect_stats"],
            subpath_cache_mb=spec.get("subpath_cache_mb", 0.0),
        )
