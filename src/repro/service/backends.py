"""Execution backends for the query service: threads or worker processes.

:class:`QueryService` owns admission, caching, and coalescing; it delegates
the actual *execution* of an admitted query to an
:class:`ExecutionBackend`:

* :class:`ThreadBackend` — the PR-3 design: a thread pool sharing the
  parent's :class:`~repro.service.handle.EngineHandle`.  Zero start-up
  cost, but the GIL serializes the Python-side parse/evaluate/aggregate
  work around the SciPy kernels.
* :class:`ProcessBackend` — spawn-based worker processes.  The warmed CSR
  buffers (adjacency + PM/SPM index) are placed in **one** shared-memory
  segment (:mod:`repro.service.shm`); each worker attaches zero-copy
  read-only views and rebuilds an equivalent engine handle, so N workers
  cost one copy of the index plus per-worker interpreter overhead.  Worker
  crashes are detected via process sentinels; outstanding queries of a
  dead worker are resubmitted once (queries are read-only, so the retry is
  safe) and the worker is respawned.

Both backends speak the same tiny contract — ``submit(canonical_text) ->
Future[OutlierResult]`` — and produce byte-identical
``OutlierResult.to_dict()`` payloads: the process backend moves results
through exactly the lossless wire form the HTTP frontend already uses.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait

from repro import exceptions as _exceptions
from repro.core.results import OutlierResult
from repro.engine.deadline import Deadline
from repro.exceptions import (
    ExecutionError,
    ServiceClosedError,
    ServiceError,
    WorkerCrashedError,
)
from repro.service import shm
from repro.service.handle import EngineHandle

__all__ = [
    "ExecutionBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]


def _resolve(
    future: "Future[OutlierResult]",
    *,
    result: OutlierResult | None = None,
    error: BaseException | None = None,
) -> None:
    """Resolve a future exactly once; later attempts are no-ops."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except Exception:  # InvalidStateError: the race was lost, result stands
        pass


class ExecutionBackend:
    """Contract both backends implement (duck-typed; this is documentation).

    ``submit`` never blocks on execution: it returns a future or raises
    :class:`~repro.exceptions.ServiceClosedError` /
    :class:`~repro.exceptions.ServiceError`.  ``close(drain=True)`` waits
    for every in-flight future to resolve before tearing workers down;
    ``drain=False`` cancels queued work and abandons the rest (their
    futures resolve with :class:`~repro.exceptions.ServiceClosedError`).
    """

    name = "abstract"

    def submit(self, query_text: str) -> "Future[OutlierResult]":
        raise NotImplementedError

    def refresh_engine(self) -> None:
        """Adopt the parent handle's current engine after an index hot-swap.

        The default is a no-op, which is correct for any backend whose
        workers execute directly against the parent's
        :class:`~repro.service.handle.EngineHandle` (the thread backend):
        the swap's atomic attribute publish is immediately visible to every
        thread.  The process backend overrides this to roll a fresh
        shared-memory segment generation out to its workers.
        """

    def live_workers(self) -> int:
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError

    def close(self, *, drain: bool = True) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Thread backend
# ----------------------------------------------------------------------
class ThreadBackend(ExecutionBackend):
    """Execute queries on a thread pool over the parent's engine handle."""

    name = "thread"

    def __init__(
        self,
        handle: EngineHandle,
        *,
        workers: int,
        timeout_seconds: float | None = None,
    ) -> None:
        self.handle = handle
        self._workers = workers
        self._timeout_seconds = timeout_seconds
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._outstanding: set[Future] = set()
        self._completed = 0
        self._failed = 0
        self._closed = False

    def submit(self, query_text: str) -> "Future[OutlierResult]":
        future: "Future[OutlierResult]" = Future()
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "the query service has been shut down; no new requests"
                )
            self._outstanding.add(future)
        try:
            self._pool.submit(self._run, query_text, future)
        except RuntimeError as error:
            # Lost the race with close(): the pool refused the task after
            # shutdown began.  Surface the same typed error submit-on-closed
            # raises, and never leave the future unresolved.
            with self._lock:
                self._outstanding.discard(future)
            raise ServiceClosedError(
                "the query service has been shut down; no new requests"
            ) from error
        return future

    def _run(self, query_text: str, future: "Future[OutlierResult]") -> None:
        # A future cancelled by a non-drain close never starts executing.
        if not future.set_running_or_notify_cancel():
            with self._lock:
                self._outstanding.discard(future)
            return
        try:
            deadline = (
                Deadline(self._timeout_seconds)
                if self._timeout_seconds is not None
                else None
            )
            result = self.handle.execute(query_text, deadline=deadline)
        except BaseException as error:  # noqa: BLE001 - forwarded to waiters
            with self._lock:
                self._failed += 1
                self._outstanding.discard(future)
            _resolve(future, error=error)
        else:
            with self._lock:
                self._completed += 1
                self._outstanding.discard(future)
            _resolve(future, result=result)

    def live_workers(self) -> int:
        return 0 if self._closed else self._workers

    def stats(self) -> dict:
        with self._lock:
            return {
                "backend": self.name,
                "configured_workers": self._workers,
                "live_workers": self.live_workers(),
                "executing_or_queued": len(self._outstanding),
                "completed": self._completed,
                "failed": self._failed,
            }

    def close(self, *, drain: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = list(self._outstanding)
        if drain:
            self._pool.shutdown(wait=True)
        else:
            # Queued-but-unstarted work is cancelled (``_run`` observes the
            # cancellation and returns); running queries finish on their
            # own threads without blocking this call.
            for future in outstanding:
                future.cancel()
            self._pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------
def _rebuild_error(type_name: str, message: str, extras: dict) -> BaseException:
    """Reconstruct a worker-side exception from its wire form.

    Known ``repro`` exception types come back as themselves (so the HTTP
    status mapping — 504 for deadline overruns, etc. — is backend
    agnostic); anything unrecognized degrades to
    :class:`~repro.exceptions.ExecutionError`.
    """
    cls = getattr(_exceptions, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        cls = ExecutionError
    kwargs = {key: value for key, value in extras.items() if value is not None}
    try:
        return cls(message, **kwargs)
    except TypeError:
        try:
            return cls(message)
        except TypeError:
            return ExecutionError(message)


#: Exception attributes carried across the process boundary (only the ones
#: the HTTP layer or callers inspect).
_ERROR_EXTRAS = (
    "budget_seconds",
    "elapsed_seconds",
    "estimated_bytes",
    "limit_bytes",
    "position",
    "line",
)


def _service_worker_main(
    worker_id: int,
    spec: dict,
    manifest: "shm.SegmentManifest",
    timeout_seconds: float | None,
    task_queue,
    result_connection,
) -> None:
    """Worker process body: attach shared index, serve queries until told to stop.

    Spawn-safe: everything arrives pickled through the process arguments;
    the CSR buffers arrive by name through ``manifest`` and are mapped
    zero-copy.  Every task produces exactly one reply — ``("result", ...)``
    with the lossless wire dict, or ``("error", ...)`` with a typed error
    description.

    Results travel over a **per-worker pipe**, not a shared queue, and that
    is load-bearing: a shared ``multiprocessing.Queue`` guards its pipe
    with a cross-process write lock, and a worker SIGKILLed between its
    pipe write and the lock release leaves that lock held forever — every
    other worker (and every future replacement) would then hang on its next
    reply.  With one single-writer pipe per worker, a killed worker can
    tear only its own stream, which the parent observes as a clean
    ``EOFError`` on that pipe alone.
    """
    try:
        mapping, views = shm.attach_arrays(manifest)
        handle = EngineHandle.from_shared(spec, views)
    except BaseException as error:  # noqa: BLE001 - startup failure report
        try:
            result_connection.send(
                ("startup-error", worker_id, type(error).__name__, str(error))
            )
        finally:
            return
    result_connection.send(("ready", worker_id, os.getpid()))
    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        if message[0] == "swap":
            # Index hot-swap: attach the new segment generation, rebuild
            # the handle, and only then retire the old mapping.  The loop
            # is serial, so a swap is always processed *between* queries —
            # no query ever observes a half-swapped engine, which is the
            # torn-index guarantee the chaos tests pin.
            _, generation, new_spec, new_manifest = message
            try:
                new_mapping, new_views = shm.attach_arrays(new_manifest)
                new_handle = EngineHandle.from_shared(new_spec, new_views)
            except BaseException as error:  # noqa: BLE001 - reported, then die
                try:
                    result_connection.send(
                        (
                            "swap-error",
                            worker_id,
                            generation,
                            type(error).__name__,
                            str(error),
                        )
                    )
                except (OSError, ValueError):
                    pass
                # Suicide on a failed swap: the monitor respawns this slot
                # against the *new* spec/segment, so the fleet still
                # converges on the new generation.
                break
            handle = new_handle
            mapping, old_mapping = new_mapping, mapping
            old_mapping.close()
            result_connection.send(("swapped", worker_id, generation))
            continue
        _, task_id, query_text = message
        try:
            deadline = (
                Deadline(timeout_seconds) if timeout_seconds is not None else None
            )
            result = handle.execute(query_text, deadline=deadline)
        except BaseException as error:  # noqa: BLE001 - shipped to parent
            extras = {
                attr: getattr(error, attr)
                for attr in _ERROR_EXTRAS
                if getattr(error, attr, None) is not None
            }
            result_connection.send(
                ("error", worker_id, task_id, type(error).__name__, str(error), extras)
            )
        else:
            result_connection.send(("result", worker_id, task_id, result.to_dict()))
    mapping.close()


@dataclass
class _Task:
    task_id: int
    query_text: str
    future: "Future[OutlierResult]"
    worker_id: int = -1
    retried: bool = False


@dataclass
class _WorkerSlot:
    worker_id: int
    process: "multiprocessing.process.BaseProcess | None" = None
    queue: "object | None" = None
    reader: "object | None" = None  # parent end of the worker's result pipe
    ready: bool = False
    dead: bool = False
    restarts: int = 0
    #: Index generation this worker's engine was built from; the swap
    #: barrier waits until every live slot reaches the target generation.
    generation: int = 0
    completed: int = 0
    failed: int = 0
    outstanding: dict[int, _Task] = field(default_factory=dict)


class ProcessBackend(ExecutionBackend):
    """Execute queries in spawn-based worker processes over shared memory.

    Parameters
    ----------
    handle:
        The warmed parent engine.  Its CSR buffers are exported into one
        shared-memory segment at construction; the parent keeps serving
        from its own copy (e.g. for ``/schema``), workers serve from the
        shared pages.
    workers:
        Worker process count.
    timeout_seconds:
        Per-request cooperative deadline, enforced inside each worker with
        the same machinery the thread backend uses.
    start_timeout_seconds:
        How long to wait for all workers' ready handshakes before treating
        start-up as failed (segment is unlinked on that path).
    max_restarts:
        Crash-replacement budget **per worker slot**; beyond it the slot is
        retired (prevents a crash-looping query from forking forever).
    segment_backing:
        ``"shm"`` exports the index into POSIX shared memory (/dev/shm);
        ``"file"`` writes an ordinary file under ``segment_dir`` and maps it
        read-only — the route for indexes larger than the tmpfs budget.
    segment_dir:
        Directory for file-backed segments (a temp dir when ``None``);
        ignored for ``"shm"``.
    """

    name = "process"

    def __init__(
        self,
        handle: EngineHandle,
        *,
        workers: int,
        timeout_seconds: float | None = None,
        start_timeout_seconds: float = 120.0,
        max_restarts: int = 3,
        segment_backing: str = "shm",
        segment_dir: str | None = None,
    ) -> None:
        self.handle = handle
        self._timeout_seconds = timeout_seconds
        self._max_restarts = max_restarts
        self._segment_backing = segment_backing
        self._segment_dir = segment_dir
        self._ctx = multiprocessing.get_context("spawn")
        spec, arrays = handle.export_shared()
        self._segment = shm.export_arrays(
            arrays,
            name_hint="repro-serve",
            backing=segment_backing,
            directory=segment_dir,
        )
        self._spec = spec
        self._lock = threading.Lock()
        self._accepting = True
        self._closed = False
        self._stop = threading.Event()
        self._next_task_id = 0
        self._tasks: dict[int, _Task] = {}
        self._startup_errors: list[str] = []
        self._generation = 0
        self._swap_errors: list[str] = []
        # Old segments a timed-out swap could not safely unlink yet; they
        # are removed at close() so the OS never leaks shared memory.
        self._retired_segments: list = []
        self._slots = [_WorkerSlot(worker_id=i) for i in range(workers)]
        self._collector = None
        try:
            for slot in self._slots:
                self._spawn(slot)
            self._collector = threading.Thread(
                target=self._collect, name="repro-serve-collector", daemon=True
            )
            self._collector.start()
            self._await_ready(start_timeout_seconds)
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-serve-monitor", daemon=True
            )
            self._monitor.start()
        except BaseException:
            # Start-up failed: tear down whatever came up and never leak
            # the shared segment.
            self._stop.set()
            for slot in self._slots:
                if slot.process is not None and slot.process.is_alive():
                    slot.process.terminate()
            for slot in self._slots:
                if slot.process is not None:
                    slot.process.join(timeout=5.0)
            if self._collector is not None:
                self._collector.join(timeout=5.0)
            for slot in self._slots:
                if slot.reader is not None:
                    slot.reader.close()
            self._segment.close()
            self._segment.unlink()
            raise

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, slot: _WorkerSlot) -> None:
        # Fresh task queue and result pipe per (re)spawn: anything a dead
        # worker left queued or half-written dies with its channels.  The
        # spec/segment read here are the *current* ones (swapped under the
        # lock by refresh_engine), so a crash replacement mid-swap attaches
        # the new generation directly — never the torn old one.
        slot.queue = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        slot.ready = False
        slot.generation = self._generation
        slot.process = self._ctx.Process(
            target=_service_worker_main,
            args=(
                slot.worker_id,
                self._spec,
                self._segment.manifest,
                self._timeout_seconds,
                slot.queue,
                writer,
            ),
            name=f"repro-serve-worker-{slot.worker_id}",
            daemon=True,
        )
        slot.process.start()
        # The child holds its own duplicate now; closing the parent's copy
        # makes the worker's death observable as EOF on ``reader``.
        writer.close()
        slot.reader = reader

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if all(slot.ready for slot in self._slots):
                    return
                errors = list(self._startup_errors)
                dead = [
                    slot.worker_id
                    for slot in self._slots
                    if not slot.ready
                    and slot.process is not None
                    and not slot.process.is_alive()
                ]
            if errors or dead:
                detail = "; ".join(errors) if errors else f"workers {dead} died"
                raise ServiceError(
                    f"process backend failed to start: {detail}"
                )
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"process backend workers not ready within {timeout:.0f}s"
                )
            time.sleep(0.01)

    # -- submission ----------------------------------------------------
    def submit(self, query_text: str) -> "Future[OutlierResult]":
        future: "Future[OutlierResult]" = Future()
        with self._lock:
            if not self._accepting:
                raise ServiceClosedError(
                    "the query service has been shut down; no new requests"
                )
            slot = self._pick_slot_locked()
            if slot is None:
                raise ServiceError(
                    "no live worker processes (all crashed past their "
                    "restart budget); restart the service"
                )
            task = _Task(self._next_task_id, query_text, future, slot.worker_id)
            self._next_task_id += 1
            self._tasks[task.task_id] = task
            slot.outstanding[task.task_id] = task
            target_queue = slot.queue
        target_queue.put(("task", task.task_id, query_text))
        return future

    def _pick_slot_locked(self) -> _WorkerSlot | None:
        """Least-loaded live worker (caller holds the lock)."""
        live = [
            slot
            for slot in self._slots
            if not slot.dead
            and slot.process is not None
            and slot.process.is_alive()
        ]
        if not live:
            return None
        return min(live, key=lambda slot: len(slot.outstanding))

    # -- result collection ---------------------------------------------
    def _collect(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                readers = [
                    slot.reader for slot in self._slots if slot.reader is not None
                ]
            if not readers:
                self._stop.wait(0.05)
                continue
            try:
                readable = connection_wait(readers, timeout=0.1)
            except OSError:  # a reader closed mid-wait (shutdown race)
                continue
            for reader in readable:
                try:
                    message = reader.recv()
                except (EOFError, OSError):
                    # The worker died (possibly mid-send: a torn frame ends
                    # in EOF because its pipe has no other writer).  Retire
                    # this pipe; the monitor handles the respawn.
                    with self._lock:
                        for slot in self._slots:
                            if slot.reader is reader:
                                slot.reader = None
                    reader.close()
                    continue
                kind = message[0]
                if kind == "ready":
                    _, worker_id, _pid = message
                    with self._lock:
                        self._slots[worker_id].ready = True
                elif kind == "startup-error":
                    _, worker_id, type_name, text = message
                    with self._lock:
                        self._startup_errors.append(
                            f"worker {worker_id}: {type_name}: {text}"
                        )
                elif kind == "swapped":
                    _, worker_id, generation = message
                    with self._lock:
                        slot = self._slots[worker_id]
                        slot.generation = max(slot.generation, generation)
                elif kind == "swap-error":
                    _, worker_id, generation, type_name, text = message
                    with self._lock:
                        self._swap_errors.append(
                            f"worker {worker_id} (generation {generation}): "
                            f"{type_name}: {text}"
                        )
                elif kind in ("result", "error"):
                    self._deliver(message)

    def _deliver(self, message: tuple) -> None:
        kind, worker_id, task_id = message[0], message[1], message[2]
        with self._lock:
            task = self._tasks.pop(task_id, None)
            slot = self._slots[worker_id]
            slot.outstanding.pop(task_id, None)
            if task is None:
                return  # resolved by a crash-retry race; first answer stands
            if kind == "result":
                slot.completed += 1
            else:
                slot.failed += 1
        if kind == "result":
            _resolve(task.future, result=OutlierResult.from_dict(message[3]))
        else:
            _resolve(
                task.future, error=_rebuild_error(message[3], message[4], message[5])
            )

    # -- crash detection -----------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            crashed: list[_WorkerSlot] = []
            with self._lock:
                if self._closed:
                    return
                for slot in self._slots:
                    if (
                        not slot.dead
                        and slot.process is not None
                        and not slot.process.is_alive()
                    ):
                        crashed.append(slot)
            for slot in crashed:
                self._replace(slot)
            self._stop.wait(0.05)

    def _replace(self, slot: _WorkerSlot) -> None:
        """Respawn a crashed worker and re-route its outstanding queries."""
        failures: list[tuple[_Task, str]] = []
        routed: list[tuple[object, _Task]] = []
        with self._lock:
            if self._closed or slot.dead:
                return
            slot.process.join(timeout=1.0)  # reap the corpse
            orphans = list(slot.outstanding.values())
            slot.outstanding.clear()
            slot.ready = False
            slot.restarts += 1
            if slot.reader is not None:
                # Retire the dead worker's result pipe (the collector sees
                # the close as EOF/OSError and moves on); the replacement
                # gets a fresh one from _spawn.
                slot.reader.close()
                slot.reader = None
            if slot.restarts > self._max_restarts:
                slot.dead = True
                slot.process = None
                slot.queue = None
            else:
                self._spawn(slot)
            retry: list[_Task] = []
            for task in orphans:
                if task.retried:
                    # Second crash while holding the same query: stop
                    # retrying, the query itself is the likely killer.
                    self._tasks.pop(task.task_id, None)
                    failures.append(
                        (
                            task,
                            f"worker process died twice while executing this "
                            f"query (worker {slot.worker_id})",
                        )
                    )
                else:
                    task.retried = True
                    retry.append(task)
            for task in retry:
                target = self._pick_slot_locked()
                if target is None:
                    self._tasks.pop(task.task_id, None)
                    failures.append(
                        (task, "all worker processes are gone; cannot retry")
                    )
                    continue
                task.worker_id = target.worker_id
                target.outstanding[task.task_id] = task
                routed.append((target.queue, task))
        # Resolve outside the lock: done-callbacks run synchronously and
        # may re-enter the service layer (admission release, stats).
        for task, reason in failures:
            _resolve(task.future, error=WorkerCrashedError(reason))
        for target_queue, task in routed:
            target_queue.put(("task", task.task_id, task.query_text))

    # -- index hot-swap ------------------------------------------------
    def refresh_engine(self, *, timeout_seconds: float = 60.0) -> None:
        """Roll the workers onto the parent handle's current engine.

        The process-backend half of the hot-swap protocol:

        1. Export the (already swapped) parent engine into a **fresh**
           shared-memory segment — the old one keeps serving untouched.
        2. Under the lock, publish the new spec/segment/generation (crash
           replacements from here on attach the new generation) and
           broadcast a ``swap`` message to every live worker's task queue.
        3. Wait until no live slot is below the target generation.  A
           worker adopts by ack (``swapped``), or by dying and being
           respawned against the new spec — either way the barrier clears.
        4. Only then unlink the old segment.  On timeout the old segment is
           retired instead (unlinked at :meth:`close`), never yanked from
           under a worker that may still be serving from it.
        """
        spec, arrays = self.handle.export_shared()
        new_segment = shm.export_arrays(
            arrays,
            name_hint="repro-serve",
            backing=self._segment_backing,
            directory=self._segment_dir,
        )
        with self._lock:
            if self._closed or not self._accepting:
                new_segment.close()
                new_segment.unlink()
                raise ServiceClosedError(
                    "the query service has been shut down; cannot swap index"
                )
            old_segment = self._segment
            self._spec = spec
            self._segment = new_segment
            self._generation += 1
            target = self._generation
            queues = [
                slot.queue
                for slot in self._slots
                if not slot.dead
                and slot.process is not None
                and slot.process.is_alive()
            ]
        for queue in queues:
            try:
                queue.put(("swap", target, spec, new_segment.manifest))
            except (OSError, ValueError):
                pass  # a worker died mid-broadcast: its respawn adopts anyway
        deadline = time.monotonic() + timeout_seconds
        while True:
            with self._lock:
                if self._closed:
                    self._retired_segments.append(old_segment)
                    return
                lagging = [
                    slot.worker_id
                    for slot in self._slots
                    if not slot.dead
                    and slot.process is not None
                    and slot.generation < target
                ]
            if not lagging:
                break
            if time.monotonic() > deadline:
                self._retired_segments.append(old_segment)
                raise ServiceError(
                    f"workers {lagging} did not adopt index generation "
                    f"{target} within {timeout_seconds:.0f}s; old segment "
                    "retired for cleanup at shutdown"
                )
            time.sleep(0.01)
        old_segment.close()
        old_segment.unlink()

    # -- introspection -------------------------------------------------
    def live_workers(self) -> int:
        with self._lock:
            return sum(
                1
                for slot in self._slots
                if not slot.dead
                and slot.process is not None
                and slot.process.is_alive()
            )

    def stats(self) -> dict:
        with self._lock:
            per_worker = [
                {
                    "worker": slot.worker_id,
                    "pid": slot.process.pid if slot.process is not None else None,
                    "alive": bool(
                        slot.process is not None and slot.process.is_alive()
                    ),
                    "ready": slot.ready,
                    "outstanding": len(slot.outstanding),
                    "completed": slot.completed,
                    "failed": slot.failed,
                    "restarts": slot.restarts,
                    "generation": slot.generation,
                }
                for slot in self._slots
            ]
            generation = self._generation
            swap_errors = len(self._swap_errors)
        return {
            "backend": self.name,
            "configured_workers": len(self._slots),
            "live_workers": self.live_workers(),
            "segment": self._segment.name,
            "segment_bytes": self._segment.manifest.total_bytes,
            "index_generation": generation,
            "swap_errors": swap_errors,
            "per_worker": per_worker,
        }

    # -- shutdown ------------------------------------------------------
    def close(self, *, drain: bool = True) -> None:
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
            outstanding = list(self._tasks.values())
        if drain and outstanding:
            # Crash replacement stays active during the drain, so a worker
            # dying here still gets its queries re-answered (or typed
            # errors) instead of hanging this join forever.
            futures_wait([task.future for task in outstanding])
        with self._lock:
            self._closed = True
            abandoned = list(self._tasks.values())
            self._tasks.clear()
            for slot in self._slots:
                slot.outstanding.clear()
        for task in abandoned:
            if not task.future.cancel():
                _resolve(
                    task.future,
                    error=ServiceClosedError(
                        "the query service shut down before this request ran"
                    ),
                )
        for slot in self._slots:
            if slot.queue is not None and slot.process is not None:
                try:
                    slot.queue.put(("stop",))
                except (OSError, ValueError):
                    pass
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=5.0)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=5.0)
        self._stop.set()
        self._collector.join(timeout=5.0)
        self._monitor.join(timeout=5.0)
        for slot in self._slots:
            if slot.queue is not None:
                slot.queue.close()
                slot.queue.cancel_join_thread()
            if slot.reader is not None:
                slot.reader.close()
                slot.reader = None
        # Last: drop the mapping and remove the segment from the OS —
        # including any segment a timed-out swap had to retire.
        self._segment.close()
        self._segment.unlink()
        for segment in self._retired_segments:
            try:
                segment.close()
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass
        self._retired_segments.clear()


def make_backend(
    handle: EngineHandle,
    *,
    backend: str,
    workers: int,
    timeout_seconds: float | None = None,
    segment_backing: str = "shm",
    segment_dir: str | None = None,
) -> ExecutionBackend:
    """Instantiate the configured execution backend."""
    if backend == "thread":
        return ThreadBackend(
            handle, workers=workers, timeout_seconds=timeout_seconds
        )
    if backend == "process":
        return ProcessBackend(
            handle,
            workers=workers,
            timeout_seconds=timeout_seconds,
            segment_backing=segment_backing,
            segment_dir=segment_dir,
        )
    raise ServiceError(f"unknown execution backend {backend!r}")
