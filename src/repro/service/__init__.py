"""Long-lived concurrent query service over the outlier-detection engine.

The batch library answers one query per :class:`~repro.OutlierDetector`;
this package turns it into a *serving* system — the unit of work the
ROADMAP's production north star actually needs:

* :class:`~repro.service.handle.EngineHandle` — load a network and build
  its PM/SPM index **once**, share the immutable matrices across a worker
  pool (per-request stats and deadlines stay thread-local).
* :class:`~repro.service.admission.AdmissionController` — a bounded
  in-flight budget: beyond ``workers + queue_depth`` requests, submissions
  shed with a typed :class:`~repro.exceptions.ServiceOverloadedError` and a
  retry-after hint, never unbounded queueing.
* :class:`~repro.service.cache.ResultCache` — whole-result memoization
  keyed by the *canonical* query form (reusing the query formatter), with
  TTL and network-version invalidation.
* :class:`~repro.service.service.QueryService` — the programmatic API:
  ``submit()`` futures, ``execute()`` sync calls, ``stats()`` snapshots.
* :mod:`repro.service.http` — a stdlib-only JSON/HTTP frontend, exposed on
  the CLI as ``repro serve``.
* :mod:`repro.service.adaptive` — workload-adaptive online indexing: a
  :class:`~repro.service.adaptive.WorkloadRecorder` logs admitted queries
  and a background :class:`~repro.service.adaptive.Reindexer` re-plans the
  SPM index around observed hot vertices, hot-swapping it atomically (with
  a shared length-2 sub-path product cache accelerating all strategies).
* :mod:`repro.service.router` / :mod:`repro.service.probe` /
  :mod:`repro.service.supervisor` — fault-tolerant replica routing: a
  :class:`~repro.service.supervisor.ReplicaSupervisor` keeps N ``repro
  serve`` replicas alive (staggered restarts, exponential backoff with
  jitter, crash-loop quarantine) while a consistent-hash
  :class:`~repro.service.router.Router` steers canonical query keys onto
  healthy replicas with health probes, per-replica circuit breakers, and
  failover — exposed on the CLI as ``repro route``.

Quickstart
----------
>>> from repro.datagen.fixtures import figure1_network
>>> from repro.service import QueryService, ServiceConfig
>>> with QueryService.from_network(
...     figure1_network(), ServiceConfig(workers=2)
... ) as service:
...     result = service.execute(
...         'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
...         'JUDGED BY author.paper.venue TOP 3;')
>>> len(result) <= 3
True
"""

from repro.service.adaptive import Reindexer, WorkloadRecorder
from repro.service.admission import AdmissionController
from repro.service.backends import ProcessBackend, ThreadBackend, make_backend
from repro.service.cache import ResultCache, canonical_query_key
from repro.service.keys import extract_query_text
from repro.service.config import (
    RouterConfig,
    ServiceConfig,
    SupervisorConfig,
    auto_worker_count,
)
from repro.service.handle import EngineHandle
from repro.service.http import ServiceHTTPServer, make_server
from repro.service.probe import HealthProber
from repro.service.router import (
    HashRing,
    Router,
    RouterHTTPServer,
    make_router_server,
)
from repro.service.service import QueryService
from repro.service.supervisor import ReplicaSupervisor

__all__ = [
    "AdmissionController",
    "EngineHandle",
    "HashRing",
    "HealthProber",
    "ProcessBackend",
    "QueryService",
    "Reindexer",
    "ReplicaSupervisor",
    "ResultCache",
    "Router",
    "RouterConfig",
    "RouterHTTPServer",
    "ServiceConfig",
    "ServiceHTTPServer",
    "SupervisorConfig",
    "ThreadBackend",
    "WorkloadRecorder",
    "auto_worker_count",
    "canonical_query_key",
    "extract_query_text",
    "make_backend",
    "make_router_server",
    "make_server",
]
