"""Supervised ``repro serve`` replica processes: spawn, watch, restart.

The router (:mod:`repro.service.router`) assumes somebody keeps the fleet
alive; :class:`ReplicaSupervisor` is that somebody.  It spawns one
``repro serve`` subprocess per replica, reads each serving banner to learn
the (ephemeral) port, and then watches the processes:

* a replica that exits — crash or otherwise — is **restarted** after an
  exponential backoff with seeded jitter, so a fleet-wide crash does not
  restart in lockstep;
* a replica that keeps crashing burns through its per-replica restart
  budget (``max_restarts_in_window`` within ``restart_window_seconds``)
  and is **quarantined**: taken out of rotation permanently instead of
  fork-bombing the host;
* every address change flows to the router through the ``on_up`` /
  ``on_down`` callbacks, so a respawned replica re-enters rotation with a
  fresh circuit breaker the moment its banner appears.

The supervisor is deliberately command-agnostic — it supervises *argv
lists* whose processes print a ``http://host:port`` banner — which is what
makes it testable with 50 ms fake replicas instead of full index builds.
"""

from __future__ import annotations

import random
import re
import signal
import subprocess
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.exceptions import ServiceError
from repro.service.config import SupervisorConfig

__all__ = ["ReplicaSupervisor", "restart_delay", "BANNER_PATTERN"]

#: The serving banner both ``repro serve`` and fake test replicas print.
BANNER_PATTERN = re.compile(r"http://([\d.]+):(\d+)")


def restart_delay(
    restart_number: int, config: SupervisorConfig, rng: random.Random
) -> float:
    """Backoff before restart number ``restart_number`` (1-based) of a replica.

    ``base * multiplier**(n-1)``, capped at the max, then jittered by
    ``±jitter_fraction`` from the supervisor's seeded RNG — deterministic
    under test, de-synchronized in production.
    """
    if restart_number < 1:
        raise ServiceError(
            f"restart_number must be >= 1, got {restart_number}"
        )
    delay = min(
        config.restart_base_delay_seconds
        * config.restart_multiplier ** (restart_number - 1),
        config.restart_max_delay_seconds,
    )
    if config.restart_jitter_fraction:
        delay *= 1.0 + rng.uniform(
            -config.restart_jitter_fraction, config.restart_jitter_fraction
        )
    return delay


@dataclass
class _Replica:
    """Supervisor-side bookkeeping for one replica slot."""

    replica_id: str
    command: list[str]
    process: "subprocess.Popen | None" = None
    host: str | None = None
    port: int | None = None
    quarantined: bool = False
    restarts_total: int = 0
    #: Monotonic timestamps of recent restarts (the quarantine window).
    restart_times: deque = field(default_factory=deque)
    #: Set when this incarnation's banner has been parsed.
    banner_seen: threading.Event = field(default_factory=threading.Event)
    #: Monotonic time before which no restart may happen (backoff).
    next_restart_at: float | None = None
    exit_code: int | None = None


class ReplicaSupervisor:
    """Keep N replica processes alive behind restart backoff and quarantine.

    Parameters
    ----------
    commands:
        ``{replica_id: argv}`` — each argv must start a process that
        prints a banner containing ``http://host:port`` on stdout once it
        is serving (``repro serve`` does; see
        :meth:`serve_commands` for building these).
    config:
        Restart policy; see
        :class:`~repro.service.config.SupervisorConfig`.
    on_up:
        ``f(replica_id, host, port, pid)`` — called (from a supervisor
        thread) every time a replica incarnation starts serving.  Wire to
        :meth:`~repro.service.router.Router.set_replica_address`.
    on_down:
        ``f(replica_id, quarantined=...)`` — called when a replica exits
        (and again with ``quarantined=True`` if its budget runs out).
        Wire to :meth:`~repro.service.router.Router.mark_replica_down`.
    env:
        Environment for the children (default: inherit).
    seed:
        Seed for the jitter RNG (deterministic backoff in tests).
    clock, sleep:
        Injectable time sources.
    """

    def __init__(
        self,
        commands: Mapping[str, Sequence[str]],
        config: SupervisorConfig | None = None,
        *,
        on_up: Callable[[str, str, int, int], None] | None = None,
        on_down: Callable[..., None] | None = None,
        env: Mapping[str, str] | None = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not commands:
            raise ServiceError("the supervisor needs at least one replica")
        self.config = config if config is not None else SupervisorConfig()
        self._on_up = on_up
        self._on_down = on_down
        self._env = dict(env) if env is not None else None
        self._rng = random.Random(seed)
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._stopping = False
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self.replicas: dict[str, _Replica] = {
            replica_id: _Replica(replica_id, list(argv))
            for replica_id, argv in commands.items()
        }

    # ------------------------------------------------------------------
    # Command building
    # ------------------------------------------------------------------
    @staticmethod
    def serve_commands(
        python: str,
        network_path: str,
        count: int,
        *,
        serve_args: Sequence[str] = (),
    ) -> dict[str, list[str]]:
        """argv per replica for ``count`` ``repro serve`` processes.

        Every replica binds port 0 (the banner reports the real one) so
        respawns can never collide with a port some other process grabbed
        in the meantime; the ring hashes stable replica *ids*, so the
        moving port is invisible to key placement.
        """
        if count < 1:
            raise ServiceError(f"replica count must be >= 1, got {count}")
        base = [
            python,
            "-m",
            "repro",
            "serve",
            "--network",
            network_path,
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            *serve_args,
        ]
        return {f"replica-{i}": list(base) for i in range(count)}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch every replica (staggered), await banners, start the monitor.

        Raises :class:`~repro.exceptions.ServiceError` — after terminating
        anything already launched — when any replica fails to produce its
        banner within ``start_timeout_seconds``.
        """
        try:
            for position, replica in enumerate(self.replicas.values()):
                if position and self.config.stagger_seconds:
                    self._sleep(self.config.stagger_seconds)
                self._launch(replica)
            deadline = time.monotonic() + self.config.start_timeout_seconds
            for replica in self.replicas.values():
                remaining = max(0.0, deadline - time.monotonic())
                if not replica.banner_seen.wait(remaining):
                    raise ServiceError(
                        f"replica {replica.replica_id!r} produced no serving "
                        f"banner within {self.config.start_timeout_seconds:.0f}s"
                        + (
                            f" (exit code {replica.process.poll()})"
                            if replica.process is not None
                            and replica.process.poll() is not None
                            else ""
                        )
                    )
        except BaseException:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-route-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self, *, terminate_timeout: float = 15.0) -> None:
        """SIGTERM the fleet, wait for graceful drains, SIGKILL stragglers."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        procs = [
            replica.process
            for replica in self.replicas.values()
            if replica.process is not None
        ]
        for process in procs:
            if process.poll() is None:
                try:
                    process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + terminate_timeout
        for process in procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _launch(self, replica: _Replica) -> None:
        replica.banner_seen = threading.Event()
        replica.host = None
        replica.port = None
        replica.exit_code = None
        replica.process = subprocess.Popen(  # noqa: S603 - operator-provided argv
            replica.command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=self._env,
        )
        # One reader thread per incarnation: parses the banner, then keeps
        # draining stdout until EOF so a chatty replica can never block on
        # a full pipe.
        threading.Thread(
            target=self._read_stdout,
            args=(replica, replica.process),
            name=f"repro-route-stdout-{replica.replica_id}",
            daemon=True,
        ).start()

    def _read_stdout(self, replica: _Replica, process: "subprocess.Popen") -> None:
        stream = process.stdout
        if stream is None:  # pragma: no cover - Popen always pipes here
            return
        try:
            for line in stream:
                if replica.banner_seen.is_set():
                    continue
                match = BANNER_PATTERN.search(line)
                if match is None:
                    continue
                host, port = match.group(1), int(match.group(2))
                with self._lock:
                    # A stale reader racing a respawn must not resurrect
                    # the dead incarnation's address.
                    if replica.process is not process:
                        return
                    replica.host, replica.port = host, port
                replica.banner_seen.set()
                if self._on_up is not None:
                    self._on_up(replica.replica_id, host, port, process.pid)
        finally:
            stream.close()

    # ------------------------------------------------------------------
    # Monitoring / restart policy
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            for replica in self.replicas.values():
                self._check(replica)
            self._stop.wait(0.05)

    def _check(self, replica: _Replica) -> None:
        with self._lock:
            if self._stopping or replica.quarantined:
                return
            process = replica.process
        if process is None:
            return
        exit_code = process.poll()
        if exit_code is None:
            return
        if replica.exit_code is None:
            # First observation of this death: report it and schedule the
            # restart (or quarantine on a blown budget).
            replica.exit_code = exit_code
            now = self._clock()
            window = self.config.restart_window_seconds
            while replica.restart_times and (
                now - replica.restart_times[0] > window
            ):
                replica.restart_times.popleft()
            if len(replica.restart_times) >= self.config.max_restarts_in_window:
                with self._lock:
                    replica.quarantined = True
                    replica.process = None
                if self._on_down is not None:
                    self._on_down(replica.replica_id, quarantined=True)
                return
            if self._on_down is not None:
                self._on_down(replica.replica_id, quarantined=False)
            replica.restart_times.append(now)
            replica.restarts_total += 1
            replica.next_restart_at = now + restart_delay(
                replica.restarts_total, self.config, self._rng
            )
            return
        if (
            replica.next_restart_at is not None
            and self._clock() >= replica.next_restart_at
        ):
            replica.next_restart_at = None
            with self._lock:
                if self._stopping:
                    return
            self._launch(replica)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe per-replica supervision state."""
        with self._lock:
            rows = []
            for replica_id in sorted(self.replicas):
                replica = self.replicas[replica_id]
                process = replica.process
                rows.append(
                    {
                        "replica_id": replica_id,
                        "pid": process.pid if process is not None else None,
                        "alive": bool(
                            process is not None and process.poll() is None
                        ),
                        "address": (
                            f"{replica.host}:{replica.port}"
                            if replica.host is not None
                            else None
                        ),
                        "restarts": replica.restarts_total,
                        "quarantined": replica.quarantined,
                        "last_exit_code": replica.exit_code,
                    }
                )
        return {"replicas": rows}

    # ------------------------------------------------------------------
    def __enter__(self) -> "ReplicaSupervisor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
