"""Fault-tolerant replica routing: consistent hashing + failover.

One ``repro serve`` replica dies with its machine; a fleet of them behind
this router keeps answering.  The router consistent-hashes the **canonical
query key** (the same normal form the result cache uses) onto a hash ring
of replicas, so a recurring query always lands on the same replica — its
:class:`~repro.service.cache.ResultCache` entry and row-cache rows stay
hot, which is the Atrapos observation: recurring meta-path workloads pay
off only when steered back to the node that already materialized them.

Robustness is the headline, layered cheapest-first:

* **Passive failure detection** — a connection refused, timeout, torn
  response, or 5xx answer marks the replica unhealthy immediately and the
  request fails over to the next distinct replica on the ring.
* **Per-replica circuit breakers** — the
  :class:`~repro.engine.resilience.CircuitBreaker` machinery (closed →
  open → half-open) short-circuits attempts against a replica that keeps
  failing, so one dead node cannot tax every request with a connect
  timeout.
* **Active health probes** — :class:`~repro.service.probe.HealthProber`
  sweeps ``/healthz`` every interval; a dead or *draining* replica stops
  receiving fresh keys within one interval.
* **Graceful degradation** — when every candidate is down the router
  answers a typed 503 with a ``Retry-After`` hint derived from the soonest
  breaker half-open time, instead of hanging or retrying forever.

What does **not** fail over: 4xx answers (the replica is answering
correctly — the query is the problem) and 429 admission sheds, which pass
through with the replica's own ``Retry-After`` hint and do not count
against its breaker.

The HTTP client seams are instrumented with the ``router.connect`` /
``router.send`` / ``router.recv`` fault points
(:mod:`repro.faultinject`), so the chaos suite can inject connection
refusals, mid-body disconnects, and slow responses deterministically.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable

from repro import faultinject
from repro.engine.resilience import CircuitBreaker
from repro.exceptions import (
    CircuitOpenError,
    NoReplicasAvailableError,
    QueryError,
    ReplicaUnavailableError,
    ServiceError,
    TransientFaultError,
)
from repro.service.config import RouterConfig
from repro.service.keys import canonical_query_key, extract_query_text

__all__ = [
    "HashRing",
    "ReplicaState",
    "RoutedResponse",
    "Router",
    "RouterHTTPServer",
    "make_router_server",
]


def _ring_hash(value: str) -> int:
    """Stable 64-bit ring position for a key or virtual node.

    blake2b rather than ``hash()``: ring placement must agree across
    processes and interpreter runs (PYTHONHASHSEED randomizes ``hash``),
    or a router restart would scatter every replica's key range.
    """
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over replica ids with virtual nodes.

    Each replica owns ``virtual_nodes`` pseudo-random ring positions;
    a key belongs to the first position at or after its own hash
    (wrapping).  Removing a replica reassigns only *its* positions — every
    other replica's key range is untouched, which is the whole point:
    replica death must not scatter the fleet's warm caches.

    The ring hashes stable replica **ids** (``replica-0``), never
    addresses: a replica respawned on a new port keeps exactly its old key
    range.
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, virtual_nodes: int = 64
    ) -> None:
        if virtual_nodes < 1:
            raise ServiceError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        self._hashes: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def add(self, node: str) -> None:
        """Place ``node``'s virtual nodes on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for vnode in range(self.virtual_nodes):
            position = _ring_hash(f"{node}#{vnode}")
            index = bisect.bisect(self._hashes, position)
            self._hashes.insert(index, position)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove ``node``'s virtual nodes (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (position, owner)
            for position, owner in zip(self._hashes, self._owners)
            if owner != node
        ]
        self._hashes = [position for position, _ in keep]
        self._owners = [owner for _, owner in keep]

    def owner(self, key: str) -> str | None:
        """The replica owning ``key``, or ``None`` on an empty ring."""
        candidates = self.candidates(key, count=1)
        return candidates[0] if candidates else None

    def candidates(self, key: str, *, count: int | None = None) -> list[str]:
        """Distinct replicas in failover order, walking clockwise from ``key``.

        The first entry is the key's owner; each subsequent entry is the
        replica that would inherit the key if everything before it died —
        exactly the order the router tries them in.
        """
        if not self._hashes:
            return []
        limit = len(self._nodes) if count is None else min(count, len(self._nodes))
        start = bisect.bisect(self._hashes, _ring_hash(key)) % len(self._hashes)
        ordered: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._hashes)):
            owner = self._owners[(start + offset) % len(self._hashes)]
            if owner in seen:
                continue
            seen.add(owner)
            ordered.append(owner)
            if len(ordered) == limit:
                break
        return ordered


@dataclass
class ReplicaState:
    """Everything the router tracks about one replica.

    ``healthy`` / ``draining`` come from the active prober and passive
    failure detection; ``quarantined`` comes from the supervisor's
    crash-loop budget.  The breaker is replaced wholesale when the
    supervisor reports a respawn — a fresh process deserves a closed
    breaker, which is what lets a recovered replica's key range return
    within one probe interval instead of one breaker reset window.
    """

    replica_id: str
    breaker: CircuitBreaker
    host: str | None = None
    port: int | None = None
    pid: int | None = None
    healthy: bool = False
    draining: bool = False
    quarantined: bool = False
    generation: int = 0
    routed: int = 0
    completed: int = 0
    failed: int = 0
    last_probe: str | None = None
    #: Index metadata from the replica's last health probe (generation,
    #: row coverage, sub-path cache hit rate, last-reindex stamp) — lets
    #: the router's /stats answer "has every replica adapted yet?".
    index_info: dict | None = None

    @property
    def address(self) -> str | None:
        if self.host is None or self.port is None:
            return None
        return f"{self.host}:{self.port}"

    def snapshot(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "address": self.address,
            "pid": self.pid,
            "healthy": self.healthy,
            "draining": self.draining,
            "quarantined": self.quarantined,
            "generation": self.generation,
            "breaker_state": self.breaker.state,
            "breaker_retry_in_seconds": self.breaker.seconds_until_half_open(),
            "routed": self.routed,
            "completed": self.completed,
            "failed": self.failed,
            "last_probe": self.last_probe,
            "index": self.index_info,
        }


@dataclass
class RoutedResponse:
    """One answer the router hands its HTTP frontend.

    ``replica_id`` is ``None`` for answers the router produced itself
    (malformed request bodies it refused locally).  ``attempts`` counts
    replicas actually tried; ``failover`` is true when the answer came
    from anyone but the key's ring owner.
    """

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    replica_id: str | None = None
    attempts: int = 1
    failover: bool = False


#: Replica response headers worth forwarding to the client.  Everything
#: else is hop-by-hop (Date, Server, Content-Length are regenerated).
_FORWARD_HEADERS = ("Content-Type", "Retry-After")


def _local_error(status: int, error: BaseException) -> RoutedResponse:
    """A router-local error response shaped exactly like a replica's."""
    body = json.dumps(
        {"error": {"type": type(error).__name__, "message": str(error)}}
    ).encode("utf-8")
    return RoutedResponse(
        status=status,
        headers={"Content-Type": "application/json"},
        body=body,
        replica_id=None,
        attempts=0,
    )


class Router:
    """Route requests onto healthy replicas by consistent hash, with failover.

    Parameters
    ----------
    replica_ids:
        Stable fleet labels (``replica-0`` ... ``replica-N``); these are
        what the ring hashes, so addresses may change under them.
    config:
        Routing knobs; see :class:`~repro.service.config.RouterConfig`.
    clock, sleep:
        Injectable time sources for deterministic tests (breakers share
        ``clock``; ``sleep`` paces failover backoff).

    Replica addresses arrive through :meth:`set_replica_address` — from a
    :class:`~repro.service.supervisor.ReplicaSupervisor`'s ``on_up``
    callback in production, or directly in tests and static deployments.
    """

    def __init__(
        self,
        replica_ids: Iterable[str],
        config: RouterConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config if config is not None else RouterConfig()
        self._clock = clock
        self._sleep = sleep
        ids = list(replica_ids)
        if not ids:
            raise ServiceError("the router needs at least one replica id")
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate replica ids: {ids}")
        self.ring = HashRing(ids, virtual_nodes=self.config.virtual_nodes)
        self._lock = threading.Lock()
        self.replicas: dict[str, ReplicaState] = {
            replica_id: ReplicaState(replica_id, self._fresh_breaker(replica_id))
            for replica_id in ids
        }
        # Router-level counters (guarded by the lock).
        self._routed = 0
        self._failovers = 0
        self._breaker_skips = 0
        self._sheds_forwarded = 0
        self._unroutable = 0

    def _fresh_breaker(self, replica_id: str) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_seconds=self.config.breaker_reset_seconds,
            clock=self._clock,
            name=replica_id,
        )

    # ------------------------------------------------------------------
    # Fleet wiring (supervisor callbacks / probe results)
    # ------------------------------------------------------------------
    def set_replica_address(
        self, replica_id: str, host: str, port: int, pid: int | None = None
    ) -> None:
        """A replica (re)spawned at ``host:port``; route to it again.

        Resets the replica's breaker and clears draining/quarantine: the
        process at this address is new, and judging it by its predecessor's
        failures would keep a perfectly healthy respawn out of rotation
        for a full reset window.
        """
        with self._lock:
            state = self._state(replica_id)
            state.host = host
            state.port = port
            state.pid = pid
            state.generation += 1
            state.healthy = True
            state.draining = False
            state.quarantined = False
            state.breaker = self._fresh_breaker(replica_id)

    def mark_replica_down(
        self, replica_id: str, *, quarantined: bool = False
    ) -> None:
        """Remove a replica from rotation (dead, or crash-loop quarantined)."""
        with self._lock:
            state = self._state(replica_id)
            state.healthy = False
            if quarantined:
                state.quarantined = True

    def record_probe(
        self, replica_id: str, verdict: str, index_info: dict | None = None
    ) -> None:
        """Apply one health-probe verdict (``ok``/``draining``/anything else).

        Probes only steer rotation; they never clear quarantine — that is
        the supervisor's call (a quarantined replica may well answer its
        ``/healthz`` right up to its next crash).  ``index_info`` (when the
        probe payload carried it) is stored verbatim for observability.
        """
        with self._lock:
            state = self._state(replica_id)
            state.last_probe = verdict
            if index_info is not None:
                state.index_info = index_info
            if verdict == "ok":
                state.healthy = True
                state.draining = False
            elif verdict == "draining":
                state.healthy = False
                state.draining = True
            else:
                state.healthy = False

    def _state(self, replica_id: str) -> ReplicaState:
        state = self.replicas.get(replica_id)
        if state is None:
            raise ServiceError(f"unknown replica id {replica_id!r}")
        return state

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_query(self, body: bytes) -> RoutedResponse:
        """Route one ``POST /query`` body to the right replica.

        The canonical query key — not the raw text — is hashed, so every
        spelling of a query lands on the replica whose result cache
        already holds its answer.  Bodies the replica would reject with
        400 are refused here instead, shaped identically, without
        spending a replica round-trip.
        """
        try:
            query_text = extract_query_text(body)
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            return _local_error(400, error)
        try:
            key = canonical_query_key(query_text)
        except QueryError as error:
            return _local_error(400, error)
        return self.forward(
            key,
            "POST",
            "/query",
            body=body,
            headers={"Content-Type": "application/json"},
        )

    def forward(
        self,
        key: str,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> RoutedResponse:
        """Send one request to ``key``'s replica, failing over along the ring.

        Tries up to ``config.max_attempts`` distinct healthy candidates in
        ring order.  Raises
        :class:`~repro.exceptions.NoReplicasAvailableError` when none
        could answer — with a retry hint derived from the soonest breaker
        half-open time among the key's candidates.
        """
        ordered = self.ring.candidates(key, count=self.config.max_attempts)
        candidates = self._usable(ordered)
        attempts = 0
        last_error: ReplicaUnavailableError | None = None
        for state in candidates:
            if attempts:
                # Pause between failover hops: a fleet mid-restart gets a
                # breath instead of an instant second connect storm.
                self._sleep(self.config.failover_backoff_seconds)
            attempts += 1
            try:
                response = state.breaker.call(
                    lambda state=state: self._attempt(
                        state, method, path, body, headers
                    )
                )
            except CircuitOpenError:
                attempts -= 1  # never reached the wire
                with self._lock:
                    self._breaker_skips += 1
                continue
            except ReplicaUnavailableError as error:
                last_error = error
                with self._lock:
                    state.failed += 1
                    # Passive detection: stop sending fresh keys here until
                    # a probe (or the supervisor) says otherwise.
                    state.healthy = False
                    self._failovers += 1
                continue
            with self._lock:
                state.routed += 1
                state.completed += 1
                self._routed += 1
                if response.status == 429:
                    self._sheds_forwarded += 1
            response.replica_id = state.replica_id
            response.attempts = attempts
            response.failover = bool(ordered) and state.replica_id != ordered[0]
            return response
        with self._lock:
            self._unroutable += 1
        retry_after = self._retry_after_hint(ordered)
        detail = f" (last error: {last_error})" if last_error is not None else ""
        raise NoReplicasAvailableError(
            f"no replica could answer this request: tried {attempts} of "
            f"{len(ordered)} candidates for key owner {ordered[0] if ordered else None!r}"
            f"{detail}; retry in {retry_after:.3g}s",
            retry_after_seconds=retry_after,
            attempted=attempts,
        )

    def _usable(self, ordered: list[str]) -> list[ReplicaState]:
        """Candidate states worth attempting, preserving ring order.

        Quarantined and draining replicas are skipped outright; replicas
        passively marked unhealthy are kept *last* — if every healthy
        candidate fails, an unhealthy one may have recovered since its
        mark (the probe only re-admits it once per interval, and a stale
        mark must not turn a routable request into a 503).
        """
        with self._lock:
            states = [self.replicas[replica_id] for replica_id in ordered]
            healthy = [
                state
                for state in states
                if state.address is not None
                and not state.quarantined
                and not state.draining
                and state.healthy
            ]
            suspect = [
                state
                for state in states
                if state.address is not None
                and not state.quarantined
                and not state.draining
                and not state.healthy
            ]
        return healthy + suspect

    def _attempt(
        self,
        state: ReplicaState,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str] | None,
    ) -> RoutedResponse:
        """One replica round-trip; raises ``ReplicaUnavailableError`` on the
        failures that justify failover (and feed the breaker)."""
        connection: http.client.HTTPConnection | None = None
        try:
            faultinject.check("router.connect")
            connection = http.client.HTTPConnection(
                state.host,
                state.port,
                timeout=self.config.attempt_timeout_seconds,
            )
            connection.connect()
            faultinject.check("router.send")
            connection.request(method, path, body=body, headers=headers or {})
            faultinject.check("router.recv")
            response = connection.getresponse()
            payload = response.read()
            status = response.status
            forwarded = {
                name: value
                for name, value in response.getheaders()
                if name in _FORWARD_HEADERS
            }
        except (
            OSError,
            http.client.HTTPException,
            TimeoutError,
            TransientFaultError,
        ) as error:
            raise ReplicaUnavailableError(
                f"replica {state.replica_id!r} ({state.address}) unreachable: "
                f"{type(error).__name__}: {error}",
                replica_id=state.replica_id,
            ) from error
        finally:
            if connection is not None:
                connection.close()
        if status >= 500:
            # The replica answered but cannot serve (draining 503, crashed
            # worker 500, ...): fail over.  Its refusal still counts
            # against the breaker — a replica that keeps refusing is down
            # for routing purposes.
            raise ReplicaUnavailableError(
                f"replica {state.replica_id!r} ({state.address}) answered "
                f"HTTP {status}",
                replica_id=state.replica_id,
                status=status,
            )
        return RoutedResponse(status=status, headers=forwarded, body=payload)

    def _retry_after_hint(self, ordered: list[str]) -> float:
        """Honest 503 Retry-After: soonest breaker half-open among candidates.

        When no breaker is open (the fleet is down for non-breaker
        reasons, e.g. every replica probe-failed), the health probe
        interval is the soonest anything can change.
        """
        with self._lock:
            waits = [
                self.replicas[replica_id].breaker.seconds_until_half_open()
                for replica_id in ordered
            ]
        open_waits = [wait for wait in waits if wait > 0]
        if open_waits:
            return max(0.05, min(open_waits))
        return self.config.probe_interval_seconds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthy_count(self) -> int:
        with self._lock:
            return sum(
                1
                for state in self.replicas.values()
                if state.healthy and not state.quarantined
            )

    def stats(self) -> dict:
        """JSON-safe router counters plus per-replica snapshots."""
        with self._lock:
            per_replica = [
                self.replicas[replica_id].snapshot()
                for replica_id in sorted(self.replicas)
            ]
            counters = {
                "routed": self._routed,
                "failovers": self._failovers,
                "breaker_skips": self._breaker_skips,
                "sheds_forwarded": self._sheds_forwarded,
                "unroutable": self._unroutable,
            }
        return {
            "router": {
                "replicas": len(per_replica),
                "healthy": sum(
                    1
                    for row in per_replica
                    if row["healthy"] and not row["quarantined"]
                ),
                "virtual_nodes": self.config.virtual_nodes,
                **counters,
            },
            "per_replica": per_replica,
        }


# ----------------------------------------------------------------------
# HTTP frontend
# ----------------------------------------------------------------------
#: Same request-body cap as the replica frontend.
MAX_BODY_BYTES = 1 << 20


class RouterHTTPServer(ThreadingHTTPServer):
    """The router's own HTTP face — same endpoints the replicas speak.

    ``POST /query`` routes; ``GET /schema`` proxies (hashed on the path,
    with the same failover); ``/healthz``, ``/stats``, and ``/replicas``
    answer locally about the fleet.  ``max_requests`` mirrors the replica
    server's smoke-test self-shutdown.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        router: Router,
        *,
        supervisor=None,
        max_requests: int | None = None,
    ):
        super().__init__(address, _RouterHandler)
        self.router = router
        self.supervisor = supervisor
        self.max_requests = max_requests
        self.served_count = 0
        self._count_lock = threading.Lock()

    def note_request_served(self) -> None:
        with self._count_lock:
            self.served_count += 1
            limit_hit = (
                self.max_requests is not None
                and self.served_count >= self.max_requests
            )
        if limit_hit:
            threading.Thread(target=self.shutdown, daemon=True).start()


class _RouterHandler(BaseHTTPRequestHandler):
    """Thin adapter from HTTP to :class:`Router` calls."""

    server: RouterHTTPServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging; /stats is the surface."""

    def _send_json(self, status: int, payload: dict, *, headers=None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_raw(
            status,
            body,
            headers={"Content-Type": "application/json", **(headers or {})},
        )

    def _send_raw(self, status: int, body: bytes, *, headers=None) -> None:
        self.send_response(status)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.note_request_served()

    def _send_routed(self, routed: RoutedResponse) -> None:
        headers = dict(routed.headers)
        if routed.replica_id is not None:
            # Which replica answered — the chaos suite asserts key
            # ownership moves (and moves back) through this header.
            headers["X-Repro-Replica"] = routed.replica_id
        self._send_raw(routed.status, routed.body, headers=headers)

    def _forward(self, key: str, method: str, path: str, body=None) -> None:
        router = self.server.router
        try:
            routed = router.forward(key, method, path, body=body)
        except NoReplicasAvailableError as error:
            retry_after = error.retry_after_seconds or 0.1
            self._send_json(
                503,
                {
                    "error": {
                        "type": type(error).__name__,
                        "message": str(error),
                    }
                },
                headers={"Retry-After": f"{retry_after:.3f}"},
            )
            return
        self._send_routed(routed)

    # -- GET -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        router = self.server.router
        if self.path == "/healthz":
            healthy = router.healthy_count()
            total = len(router.replicas)
            status = "ok" if healthy == total else (
                "degraded" if healthy else "unavailable"
            )
            self._send_json(
                200 if healthy else 503,
                {
                    "status": status,
                    "role": "router",
                    "replicas": total,
                    "healthy_replicas": healthy,
                },
            )
        elif self.path == "/stats":
            stats = router.stats()
            if self.server.supervisor is not None:
                stats["supervisor"] = self.server.supervisor.stats()
            self._send_json(200, stats)
        elif self.path == "/replicas":
            payload = {"replicas": router.stats()["per_replica"]}
            if self.server.supervisor is not None:
                payload["supervisor"] = self.server.supervisor.stats()
            self._send_json(200, payload)
        elif self.path == "/schema":
            # Network metadata is replica-independent; hash on the path so
            # repeated calls reuse one replica's connection-warm path.
            self._forward(self.path, "GET", self.path)
        else:
            self._send_json(
                404, {"error": {"type": "NotFound", "message": self.path}}
            )

    # -- POST ------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/query":
            self._send_json(
                404, {"error": {"type": "NotFound", "message": self.path}}
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400,
                {
                    "error": {
                        "type": "ValueError",
                        "message": "invalid or oversized request body",
                    }
                },
            )
            return
        body = self.rfile.read(length)
        router = self.server.router
        try:
            routed = router.route_query(body)
        except NoReplicasAvailableError as error:
            retry_after = error.retry_after_seconds or 0.1
            self._send_json(
                503,
                {
                    "error": {
                        "type": type(error).__name__,
                        "message": str(error),
                    }
                },
                headers={"Retry-After": f"{retry_after:.3f}"},
            )
            return
        self._send_routed(routed)


def make_router_server(
    router: Router,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    supervisor=None,
    max_requests: int | None = None,
) -> RouterHTTPServer:
    """Bind (but do not start) the router's HTTP frontend.

    Mirrors :func:`repro.service.http.make_server`: ``port=0`` binds an
    ephemeral port, ``serve_forever()`` runs, ``shutdown()`` stops.
    """
    return RouterHTTPServer(
        (host, port), router, supervisor=supervisor, max_requests=max_requests
    )
