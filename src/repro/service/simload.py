"""Deterministic CPU-bound workload emulation for backend benchmarks.

Measuring "the process backend scales where threads cannot" needs a
workload whose serialization behavior is *architectural*, not incidental:
real GIL contention depends on the host's core count, scheduler, and SciPy
release-points, which makes a scaling assertion flaky on 1-core CI runners
and meaningless across machines.

:class:`GilBoundNetOutMeasure` models the Python-side share of query
evaluation (parse, per-path aggregation, result assembly — the part the
GIL serializes) explicitly: every ``score`` call performs the normal
NetOut computation plus ``compute_seconds`` of simulated interpreter work
holding a **module-level, per-process lock**.  Threads in one process
serialize on that lock exactly as they would on the GIL; worker processes
each have their own lock (and their own GIL) and proceed in parallel.
The resulting thread-vs-process throughput curve reproduces the physics
the benchmark is about — N-way parallelism of the Python share — on any
host, including single-core containers, and is deterministic run to run.

The class lives in an importable module (not the benchmark file) so the
spawn-based process backend can pickle it by reference into workers; the
lock deliberately stays module state and never crosses the pickle
boundary.
"""

from __future__ import annotations

import threading
import time

from repro.core.measures import NetOutMeasure

__all__ = ["GilBoundNetOutMeasure"]

#: One lock per process, like the GIL it stands in for.  Never pickled:
#: workers import this module and get their own instance.
_INTERPRETER_LOCK = threading.Lock()


class GilBoundNetOutMeasure(NetOutMeasure):
    """NetOut plus ``compute_seconds`` of GIL-emulating interpreter work.

    Parameters
    ----------
    compute_seconds:
        Simulated Python-side compute per scoring call.  Held under the
        per-process lock, so concurrency within one process serializes and
        concurrency across processes does not — the distinction the
        thread-vs-process scaling benchmark exists to measure.
    """

    name = "netout-gilbound"

    def __init__(self, compute_seconds: float = 0.02) -> None:
        super().__init__()
        self.compute_seconds = compute_seconds

    def score(self, phi_candidates, phi_reference):
        with _INTERPRETER_LOCK:
            # sleep() releases the real GIL, so the serialization measured
            # here comes from the explicit lock — deterministic on any
            # machine, independent of host core count.
            time.sleep(self.compute_seconds)
        return super().score(phi_candidates, phi_reference)

    def __reduce__(self):
        # Explicit reduce keeps the wire form to (class, args): the lock is
        # module state in the importing process, never instance state.
        return (self.__class__, (self.compute_seconds,))
