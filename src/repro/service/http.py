"""A stdlib-only JSON/HTTP frontend over :class:`QueryService`.

Endpoints::

    POST /query        {"query": "FIND OUTLIERS ... TOP 5;"}
                       -> 200 {"result": {...}, "cached": bool, "elapsed_ms": f}
                       -> 400 malformed body / query syntax or semantics
                       -> 429 shed by admission control (Retry-After header)
                       -> 503 service shut down
                       -> 504 per-request deadline exceeded
    GET  /healthz      -> 200 {"status": "ok", ...} while serving
                       -> 503 {"status": "draining"} once a graceful drain
                          has begun (readiness gate: the replica router
                          pulls the replica from rotation before its
                          queue empties and the socket dies)
                       -> 503 {"status": "closed"} after shutdown
    GET  /stats        -> 200 the QueryService.stats() snapshot
    GET  /schema       -> 200 vertex and edge types of the served network

Built on :class:`http.server.ThreadingHTTPServer` on purpose: the repo's
hard dependency set is numpy/scipy/networkx, and a serving layer must not
change that.  Handler threads only *wait* on service futures; execution
concurrency stays bounded by the service's worker pool, and overload
surfaces as fast typed 429s rather than connection pileups.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import (
    DeadlineExceededError,
    QueryError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerCrashedError,
)
from repro.service.keys import extract_query_text
from repro.service.service import QueryService

__all__ = ["ServiceHTTPServer", "make_server"]

#: Cap on accepted request bodies; an outlier query is a few hundred bytes,
#: so anything beyond this is a client error, not a query.
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`.

    ``serve_count`` tracks completed HTTP requests; when ``max_requests``
    is set (smoke tests), the server shuts itself down after that many.
    """

    daemon_threads = True

    def __init__(self, address, service: QueryService, *, max_requests=None):
        super().__init__(address, _Handler)
        self.service = service
        self.max_requests = max_requests
        self.served_count = 0
        self._count_lock = threading.Lock()

    def note_request_served(self) -> None:
        """Count one finished request; trigger shutdown at ``max_requests``."""
        with self._count_lock:
            self.served_count += 1
            limit_hit = (
                self.max_requests is not None
                and self.served_count >= self.max_requests
            )
        if limit_hit:
            # shutdown() blocks until serve_forever exits, so it must not
            # run on a handler thread that serve_forever is waiting on.
            threading.Thread(target=self.shutdown, daemon=True).start()


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints; all bodies are JSON documents."""

    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging; /stats is the observability
        surface."""

    def _send_json(self, status: int, payload: dict, *, headers=None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.server.note_request_served()

    def _error(self, status: int, error: BaseException, *, headers=None) -> None:
        self._send_json(
            status,
            {"error": {"type": type(error).__name__, "message": str(error)}},
            headers=headers,
        )

    # -- GET -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        service = self.server.service
        if self.path == "/healthz":
            # Liveness vs readiness: the process is alive (we are
            # answering), but a draining or closed service must not
            # receive new queries — 503 tells the router to remove this
            # replica from rotation while its queue finishes.
            if service.closed:
                status_code, status = 503, "closed"
            elif service.draining:
                status_code, status = 503, "draining"
            else:
                status_code, status = 200, "ok"
            payload = {
                "status": status,
                "engine": service.handle.fingerprint,
                "network_version": service.handle.version,
                "backend": service.config.backend,
                "workers": service.config.workers,
                "live_workers": service.backend.live_workers(),
                # Index metadata rides the health probe so the router can
                # surface per-replica index freshness without extra calls.
                "index": service.handle.index_metadata(),
            }
            if service.reindexer is not None:
                reindexer = service.reindexer
                payload["index"]["reindexes"] = reindexer.reindexes
                payload["index"]["last_reindex_unix"] = (
                    reindexer.last_reindex_unix
                )
            self._send_json(status_code, payload)
        elif self.path == "/stats":
            self._send_json(200, service.stats())
        elif self.path == "/schema":
            schema = service.handle.network.schema
            network = service.handle.network
            self._send_json(
                200,
                {
                    "vertex_types": {
                        vertex_type: network.num_vertices(vertex_type)
                        for vertex_type in sorted(schema.vertex_types)
                    },
                    "edge_types": sorted(
                        f"{edge.source}-{edge.target}"
                        for edge in schema.edge_types
                    ),
                },
            )
        else:
            self._send_json(
                404, {"error": {"type": "NotFound", "message": self.path}}
            )

    # -- POST ------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/query":
            self._send_json(
                404, {"error": {"type": "NotFound", "message": self.path}}
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._error(400, ValueError("invalid or oversized request body"))
            return
        try:
            query_text = extract_query_text(self.rfile.read(length))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            self._error(400, error)
            return

        service = self.server.service
        started = time.monotonic()
        try:
            future = service.submit(query_text)
            # Set only on the result-cache hit path; `future.done()` would
            # misreport fast fresh queries that resolve before we look.
            cached = getattr(future, "from_cache", False)
            result = service.result(future)
        except ServiceOverloadedError as error:
            retry_after = error.retry_after_seconds or 0.1
            self._error(429, error, headers={"Retry-After": f"{retry_after:.3f}"})
            return
        except ServiceClosedError as error:
            self._error(503, error)
            return
        except DeadlineExceededError as error:
            self._error(504, error)
            return
        except WorkerCrashedError as error:
            # The query's worker process died (twice): a server-side fault,
            # not a client error.
            self._error(500, error)
            return
        except QueryError as error:
            self._error(400, error)
            return
        except ReproError as error:
            # Anything else the library raises on purpose is an unservable
            # query (empty candidate set, dead anchor, ...): a client error.
            self._error(422, error)
            return
        elapsed_ms = (time.monotonic() - started) * 1e3
        self._send_json(
            200,
            {
                "result": result.to_dict(),
                "cached": cached,
                "elapsed_ms": elapsed_ms,
            },
        )


def make_server(
    service: QueryService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: int | None = None,
) -> ServiceHTTPServer:
    """Bind (but do not start) the HTTP frontend for ``service``.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address``.  Call ``serve_forever()`` to run, and
    ``shutdown()`` from another thread to stop.
    """
    return ServiceHTTPServer((host, port), service, max_requests=max_requests)
