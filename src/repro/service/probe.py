"""Active health probing for the replica router.

Passive failure detection (a routed request failing) only notices a dead
replica when traffic happens to hit it; the :class:`HealthProber` closes
that gap by sweeping every replica's ``/healthz`` on a fixed interval.
Combined with the readiness semantics of the replica frontend — ``200
ok`` while serving, ``503 {"status": "draining"}`` once a SIGTERM drain
begins — the probe gives the router two guarantees:

* a dead replica stops receiving *fresh* keys within one probe interval
  (in-flight requests fail over immediately via passive detection);
* a draining replica leaves rotation **before** its socket dies, so its
  final in-flight queries finish without new ones piling on.

Probes are deliberately dumb HTTP GETs with a short timeout; verdict
interpretation lives in :meth:`repro.service.router.Router.record_probe`
so the prober owns scheduling and nothing else.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import TYPE_CHECKING

__all__ = ["HealthProber", "probe_replica", "probe_replica_detail"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.router import ReplicaState, Router


def probe_replica_detail(
    host: str, port: int, *, timeout: float
) -> tuple[str, dict]:
    """One ``/healthz`` round-trip: ``(verdict, payload)``.

    The verdict drives rotation (see :func:`probe_replica`); the payload is
    whatever the replica reported — notably its ``"index"`` metadata block
    (index generation, row coverage, sub-path cache hit rate, last-reindex
    stamp), which the router stores per replica and re-exports from its own
    ``/stats``.  An unreachable replica yields an empty payload.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        payload = json.loads(response.read() or b"{}")
    except (OSError, http.client.HTTPException, TimeoutError, ValueError):
        return "unreachable", {}
    finally:
        connection.close()
    if not isinstance(payload, dict):
        payload = {}
    status_text = payload.get("status")
    if response.status == 200 and status_text == "ok":
        return "ok", payload
    if isinstance(status_text, str) and status_text:
        return status_text, payload
    return f"http-{response.status}", payload


def probe_replica(host: str, port: int, *, timeout: float) -> str:
    """One ``/healthz`` round-trip, reduced to a router verdict string.

    ``"ok"`` (healthy and ready), ``"draining"`` (alive but leaving),
    ``"unreachable"`` (no answer), or the replica's own status word for
    anything else (``"closed"``, ...) — anything but ``"ok"`` takes the
    replica out of rotation.
    """
    verdict, _ = probe_replica_detail(host, port, timeout=timeout)
    return verdict


class HealthProber:
    """A background thread sweeping replica ``/healthz`` endpoints.

    Parameters
    ----------
    router:
        The router whose replicas are probed; verdicts are applied through
        :meth:`~repro.service.router.Router.record_probe`.
    interval_seconds, timeout_seconds:
        Override the router config's probe settings (tests use tight
        intervals; production leaves these ``None``).

    ``probe_once()`` runs one synchronous sweep — tests drive it directly
    instead of sleeping through intervals, and ``start()``/``stop()``
    manage the background loop for real deployments.
    """

    def __init__(
        self,
        router: "Router",
        *,
        interval_seconds: float | None = None,
        timeout_seconds: float | None = None,
    ) -> None:
        self.router = router
        self.interval_seconds = (
            interval_seconds
            if interval_seconds is not None
            else router.config.probe_interval_seconds
        )
        self.timeout_seconds = (
            timeout_seconds
            if timeout_seconds is not None
            else router.config.probe_timeout_seconds
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Completed sweeps (observable progress for tests and /stats).
        self.sweeps = 0

    # ------------------------------------------------------------------
    def probe_once(self) -> dict[str, str]:
        """Probe every addressed replica once; returns {replica_id: verdict}.

        Quarantined replicas are still probed (the verdict lands in
        ``last_probe`` for operators) but ``record_probe`` never clears
        quarantine — only the supervisor can.
        """
        verdicts: dict[str, str] = {}
        for replica_id, state in list(self.router.replicas.items()):
            host, port = state.host, state.port
            if host is None or port is None:
                continue
            verdict, payload = probe_replica_detail(
                host, port, timeout=self.timeout_seconds
            )
            index_info = payload.get("index")
            self.router.record_probe(
                replica_id,
                verdict,
                index_info=index_info if isinstance(index_info, dict) else None,
            )
            verdicts[replica_id] = verdict
        self.sweeps += 1
        return verdicts

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background probe loop (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-route-prober", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 - the prober must never die
                pass
            self._stop.wait(self.interval_seconds)
