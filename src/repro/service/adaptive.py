"""Workload-adaptive online indexing: observe → re-plan → hot-swap.

The paper's SPM strategy chooses which length-2 rows to materialize from a
*static* initialization workload (§6.2).  A long-running service sees the
*live* query stream, and the two drift apart: vertices hot in production
were never indexed, vertices indexed at start-up stop being queried.
Atrapos and HetFS (PAPERS.md) both make the case that sustained meta-path
workloads reward re-planning against observed traffic; this module closes
that loop over the serving stack:

1. :class:`WorkloadRecorder` — the *observe* half.  The service appends the
   canonical key of every admitted query to a bounded in-memory log (a
   deque; old entries fall off), optionally spilling each key to a JSONL
   file for offline inspection.  Recording is O(1) and never blocks the
   admission path.
2. :class:`Reindexer` — the *re-plan + swap* half.  A background thread
   periodically mines the recorder with the same
   :class:`~repro.engine.optimizer.WorkloadAnalyzer` the paper's SPM build
   uses, ranks vertices hottest-first, rebuilds an SPM index off-thread
   under a byte budget (:func:`~repro.engine.index.build_spm_index_bounded`),
   and asks the service to hot-swap it atomically
   (:meth:`~repro.service.handle.EngineHandle.swap_index` + a backend
   refresh).  Queries never wait on a rebuild: the old index serves until
   the one-assignment publish.

Every cycle records why it did or did not swap (``skipped_*`` counters and
``last_skip_reason``), because a control loop that silently does nothing is
indistinguishable from a broken one.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.engine.index import build_spm_index_bounded
from repro.engine.optimizer import WorkloadAnalyzer
from repro.exceptions import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import QueryService

__all__ = ["WorkloadRecorder", "Reindexer"]


class WorkloadRecorder:
    """Bounded, thread-safe admission log of canonical query keys.

    Parameters
    ----------
    max_entries:
        In-memory window size; the re-indexer only ever sees the most
        recent ``max_entries`` admissions, which is what makes the loop
        *adaptive* — old traffic ages out of the plan.
    spill_path:
        Optional JSONL file; every recorded key is appended as
        ``{"ts": <unix>, "query": <key>}`` for offline workload analysis.
        Spill I/O errors are counted, not raised — observability must
        never fail a query.
    """

    def __init__(
        self,
        *,
        max_entries: int = 4096,
        spill_path: str | None = None,
    ) -> None:
        if max_entries < 1:
            raise ServiceError(
                f"admission log needs at least 1 entry, got {max_entries}"
            )
        self.max_entries = max_entries
        self.spill_path = spill_path
        self._lock = threading.Lock()
        self._entries: deque[str] = deque(maxlen=max_entries)
        self._total = 0
        self._spill_errors = 0
        self._spill_file = None
        if spill_path is not None:
            try:
                self._spill_file = open(spill_path, "a", encoding="utf-8")
            except OSError:
                self._spill_errors += 1

    def record(self, key: str) -> None:
        """Append one admitted query's canonical key (O(1), non-blocking)."""
        with self._lock:
            self._entries.append(key)
            self._total += 1
            spill = self._spill_file
        if spill is not None:
            # File append outside the lock: a slow disk must not serialize
            # the admission path behind it.
            try:
                spill.write(
                    json.dumps({"ts": time.time(), "query": key}) + "\n"
                )
                spill.flush()
            except (OSError, ValueError):
                self._spill_errors += 1

    def snapshot(self) -> tuple[int, list[str]]:
        """``(total_ever_recorded, current_window)`` — the miner's input."""
        with self._lock:
            return self._total, list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "window_entries": len(self._entries),
                "max_entries": self.max_entries,
                "total_recorded": self._total,
                "spill_path": self.spill_path,
                "spill_errors": self._spill_errors,
            }

    def close(self) -> None:
        with self._lock:
            spill, self._spill_file = self._spill_file, None
        if spill is not None:
            try:
                spill.close()
            except OSError:
                self._spill_errors += 1


class Reindexer:
    """Background thread that re-plans the SPM index from live traffic.

    Each cycle (every ``interval_seconds``, or on demand via
    :meth:`run_once`):

    1. Snapshot the recorder.  Skip unless at least ``min_new_queries``
       admissions arrived since the last *attempted* cycle — re-planning
       an unchanged workload wastes a rebuild.
    2. Mine the window with :class:`WorkloadAnalyzer`, rank vertices by
       relative frequency (ties broken by vertex id for determinism), and
       keep those at or above ``spm_threshold`` — the paper's SPM
       selection rule applied to the live window.
    3. Skip if the selection equals the currently served one (the index
       would be identical) or the byte budget admits no vertex at all.
    4. Build the new index off-thread and hand it to
       ``service.apply_index_swap`` — queries keep flowing against the old
       index for the whole build.

    Failures are caught, counted, and retried next cycle: a broken rebuild
    must degrade to "the index stops adapting", never to "the service
    stops answering".
    """

    def __init__(
        self,
        service: "QueryService",
        *,
        interval_seconds: float = 30.0,
        min_new_queries: int = 32,
        spm_threshold: float = 0.01,
        max_index_mb: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_seconds <= 0:
            raise ServiceError(
                f"reindex interval must be > 0 seconds, got {interval_seconds}"
            )
        if min_new_queries < 1:
            raise ServiceError(
                f"min_new_queries must be >= 1, got {min_new_queries}"
            )
        self.service = service
        self.interval_seconds = interval_seconds
        self.min_new_queries = min_new_queries
        self.spm_threshold = spm_threshold
        self.max_index_mb = max_index_mb
        self._clock = clock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._cycle_lock = threading.Lock()
        self._seen_total = 0
        self._served_selection: tuple = ()
        self.reindexes = 0
        self.cycles = 0
        self.skipped = 0
        self.failed = 0
        self.last_skip_reason: str | None = None
        self.last_error: str | None = None
        self.last_reindex_unix: float | None = None
        self.last_selected: list[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the background loop (daemon thread; idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-reindexer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the loop to exit and join it."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.run_once()
            except Exception:  # pragma: no cover - run_once already guards
                pass

    # ------------------------------------------------------------------
    # One control-loop cycle
    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """One observe→re-plan→swap cycle; True when a swap landed.

        Serialized by an internal lock so a slow scheduled cycle and an
        operator-triggered one never build two indexes concurrently.
        """
        with self._cycle_lock:
            self.cycles += 1
            try:
                return self._cycle()
            except Exception as error:
                self.failed += 1
                self.last_error = f"{type(error).__name__}: {error}"
                return False

    def _skip(self, reason: str) -> bool:
        self.skipped += 1
        self.last_skip_reason = reason
        return False

    def _cycle(self) -> bool:
        recorder = self.service.recorder
        if recorder is None:
            return self._skip("no-recorder")
        total, window = recorder.snapshot()
        new_queries = total - self._seen_total
        if new_queries < self.min_new_queries:
            return self._skip("too-few-new-queries")
        # Advance the watermark even when the cycle later skips or fails:
        # the same traffic should not retrigger an identical attempt.
        self._seen_total = total

        network = self.service.handle.network
        analyzer = WorkloadAnalyzer(network)
        analyzer.analyze_many(window)
        frequencies = analyzer.relative_frequencies()
        # Hottest first, vertex id as the deterministic tiebreak.
        ranked = [
            vertex
            for vertex, frequency in sorted(
                frequencies.items(), key=lambda item: (-item[1], item[0])
            )
            if frequency >= self.spm_threshold
        ]
        if not ranked:
            return self._skip("no-hot-vertices")

        max_bytes = (
            int(self.max_index_mb * 1024 * 1024)
            if self.max_index_mb is not None
            else None
        )
        index, indexed = build_spm_index_bounded(
            network, ranked, max_bytes=max_bytes
        )
        if not indexed:
            return self._skip("budget-excludes-all")
        selection = tuple(sorted(indexed))
        if selection == self._served_selection:
            return self._skip("selection-unchanged")

        self.service.apply_index_swap(index)
        self._served_selection = selection
        self.reindexes += 1
        self.last_reindex_unix = self._clock()
        self.last_selected = [str(vertex) for vertex in indexed]
        self.last_skip_reason = None
        return True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "interval_seconds": self.interval_seconds,
            "min_new_queries": self.min_new_queries,
            "spm_threshold": self.spm_threshold,
            "max_index_mb": self.max_index_mb,
            "running": self._thread is not None,
            "cycles": self.cycles,
            "reindexes": self.reindexes,
            "skipped": self.skipped,
            "failed": self.failed,
            "last_skip_reason": self.last_skip_reason,
            "last_error": self.last_error,
            "last_reindex_unix": self.last_reindex_unix,
            "last_selected": list(self.last_selected),
        }
