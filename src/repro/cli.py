"""Command-line interface: the outlier-detection system as a tool.

Subcommands::

    repro generate --preset ego --out corpus.json [--seed 0]
    repro query    --network corpus.json "FIND OUTLIERS ..." [--strategy pm]
    repro suggest  --network corpus.json "FIND OUTLIERS ..."
    repro explain  --network corpus.json "FIND OUTLIERS ..."
    repro schema   --network corpus.json
    repro shell    --network corpus.json
    repro serve    --network corpus.json --port 8080 --workers 8
    repro route    --network corpus.json --replicas 3 --port 8080
    repro zoo      [--scenario NAME] [--detector NAME] [--quick] [--out FILE]

``repro zoo`` runs the detector-zoo evaluation grid — NetOut and every
baseline over the planted-outlier scenarios — and reports ROC AUC,
precision@k, and average precision per cell (see ``docs/detector_zoo.md``).

``repro serve`` runs the concurrent query service of
:mod:`repro.service` behind a stdlib JSON/HTTP frontend — see
``docs/service.md`` for endpoints and tuning.

``repro route`` runs a supervised fleet of ``repro serve`` replicas
behind a consistent-hash router with health probes, per-replica circuit
breakers, and failover — the fault-tolerant serving tier (see
``docs/service.md``, "Replica routing & failover").

``repro shell`` is a small REPL: enter queries terminated by ``;`` and use
dot-commands (``.help``, ``.schema``, ``.strategy pm``, ``.measure cossim``,
``.suggest``, ``.quit``) to steer the session — the interactive,
exploratory usage mode the paper's introduction motivates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.datagen.security import SecurityNetworkGenerator
from repro.datagen.synthetic import BibliographicNetworkGenerator, hub_ego_corpus
from repro.engine.advisor import QueryAdvisor
from repro.engine.detector import OutlierDetector
from repro.exceptions import ReproError
from repro.hin.io import load_json, save_json
from repro.hin.network import HeterogeneousInformationNetwork
from repro.viz import score_distribution

__all__ = ["main", "build_parser"]

PRESETS = ("bibliographic", "ego", "security")


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query-based outlier detection in heterogeneous "
        "information networks (EDBT 2015 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic corpus and save it as JSON"
    )
    generate.add_argument("--preset", choices=PRESETS, default="ego")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output JSON path")

    def add_network_and_query(sub, with_query=True):
        sub.add_argument("--network", required=True, help="network JSON path")
        if with_query:
            sub.add_argument("query", help="outlier query text")
        sub.add_argument(
            "--strategy", choices=("baseline", "pm", "spm"), default="pm"
        )
        sub.add_argument(
            "--measure", default="netout", help="outlierness measure name"
        )

    def add_resilience_flags(sub):
        sub.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-query time budget; on overrun the query degrades "
            "(partial result) or fails fast instead of running forever",
        )
        sub.add_argument(
            "--max-memory-mb",
            type=float,
            default=None,
            metavar="MB",
            help="refuse index builds whose estimated size exceeds this "
            "budget, degrading to a cheaper strategy instead",
        )

    query = commands.add_parser("query", help="run one outlier query")
    add_network_and_query(query)
    add_resilience_flags(query)
    query.add_argument(
        "--distribution",
        action="store_true",
        help="also print the candidate score distribution",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="also print per-phase execution statistics",
    )
    query.add_argument(
        "--format",
        choices=("table", "json", "csv", "html"),
        default="table",
        help="result rendering (default: table)",
    )
    query.add_argument(
        "--out",
        default=None,
        help="write the rendering to a file instead of stdout "
        "(required for --format html)",
    )

    workload = commands.add_parser(
        "workload",
        help="run a Table 4 template workload and report latency per strategy",
    )
    workload.add_argument("--network", required=True, help="network JSON path")
    workload.add_argument("--template", choices=("Q1", "Q2", "Q3"), default="Q1")
    workload.add_argument("--count", type=int, default=50, help="queries to run")
    workload.add_argument(
        "--queries-file",
        default=None,
        help="replay queries from a file (';'-separated) instead of "
        "generating them from the template",
    )
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument(
        "--strategies",
        default="baseline,pm,spm",
        help="comma-separated strategies to compare",
    )
    workload.add_argument("--measure", default="netout")
    add_resilience_flags(workload)

    explain = commands.add_parser("explain", help="show a query's execution plan")
    add_network_and_query(explain)

    suggest = commands.add_parser(
        "suggest", help="suggest more interesting feature meta-paths"
    )
    add_network_and_query(suggest)
    suggest.add_argument("--max-suggestions", type=int, default=5)

    schema = commands.add_parser("schema", help="print a network's schema")
    schema.add_argument("--network", required=True)

    stats = commands.add_parser(
        "stats", help="print descriptive statistics of a network"
    )
    stats.add_argument("--network", required=True)

    shell = commands.add_parser("shell", help="interactive query shell")
    add_network_and_query(shell, with_query=False)

    serve = commands.add_parser(
        "serve", help="run the concurrent query service (JSON over HTTP)"
    )
    serve.add_argument("--network", required=True, help="network JSON path")
    serve.add_argument(
        "--strategy", choices=("baseline", "pm", "spm"), default="pm"
    )
    serve.add_argument(
        "--measure", default="netout", help="outlierness measure name"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 binds an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="workers executing queries over the shared index; 0 auto-sizes "
        "to the physical-core estimate (os.cpu_count()/2, floor 1)",
    )
    serve.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="execution backend: 'thread' shares the engine in-process; "
        "'process' spawns workers over zero-copy shared-memory CSR views "
        "(results are identical; see docs/service.md)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="requests allowed to wait beyond the busy workers; requests "
        "past workers+queue-depth are shed with HTTP 429",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request execution deadline (HTTP 504 on overrun)",
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="result cache entry lifetime; 0 disables the result cache",
    )
    serve.add_argument(
        "--row-cache-rows",
        type=int,
        default=4096,
        metavar="N",
        help="shared LRU row cache capacity in (meta-path, vertex) rows; "
        "0 disables it",
    )
    serve.add_argument(
        "--subpath-cache-mb",
        type=float,
        default=32.0,
        metavar="MB",
        help="shared cache of length-2 sub-path products reused across "
        "concurrent queries whose meta-paths overlap; 0 disables it",
    )
    serve.add_argument(
        "--adaptive",
        action="store_true",
        help="enable workload-adaptive re-indexing (spm strategy only): "
        "a background thread mines admitted queries and atomically "
        "hot-swaps an SPM index built around the observed hot vertices",
    )
    serve.add_argument(
        "--reindex-interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="period of the adaptive re-index cycle (with --adaptive)",
    )
    serve.add_argument(
        "--reindex-min-queries",
        type=int,
        default=32,
        metavar="N",
        help="new admissions required before a re-index cycle re-plans",
    )
    serve.add_argument(
        "--admission-log",
        default=None,
        metavar="PATH",
        help="JSONL file the admission log spills to for offline workload "
        "inspection (with --adaptive)",
    )
    serve.add_argument(
        "--max-index-mb",
        type=float,
        default=None,
        metavar="MB",
        help="byte budget of adaptively rebuilt SPM indexes (hottest "
        "vertices first; default unbounded)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N HTTP requests (smoke tests)",
    )
    serve.add_argument(
        "--storage",
        choices=("ram", "mmap"),
        default="ram",
        help="array tier: 'ram' holds adjacency and index in memory; "
        "'mmap' spills them to file-backed buffers and (with --strategy "
        "pm) builds the index out-of-core in bounded row blocks, so "
        "networks larger than RAM still serve (see docs/scale.md)",
    )
    serve.add_argument(
        "--storage-dir",
        default=None,
        metavar="DIR",
        help="directory for mmap-tier array files and file-backed worker "
        "segments (a private temp dir when omitted)",
    )
    serve.add_argument(
        "--index-build-block-rows",
        type=int,
        default=8192,
        metavar="N",
        help="rows per block of the out-of-core index build (with "
        "--storage mmap); smaller blocks bound peak RAM tighter",
    )
    serve.add_argument(
        "--max-build-memory-mb",
        type=float,
        default=None,
        metavar="MB",
        help="approximate per-block memory budget for the out-of-core "
        "index build; shrinks the effective block size when needed",
    )

    route = commands.add_parser(
        "route",
        help="run supervised serve replicas behind a consistent-hash router",
    )
    route.add_argument("--network", required=True, help="network JSON path")
    route.add_argument(
        "--replicas",
        type=int,
        default=2,
        metavar="N",
        help="number of supervised `repro serve` replica processes",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument(
        "--port",
        type=int,
        default=8080,
        help="router listen port (0 binds an ephemeral port and prints it)",
    )
    # Per-replica serve knobs, forwarded verbatim to every replica argv.
    route.add_argument(
        "--strategy", choices=("baseline", "pm", "spm"), default="pm"
    )
    route.add_argument(
        "--measure", default="netout", help="outlierness measure name"
    )
    route.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="execution backend of each replica",
    )
    route.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="query workers per replica (0 auto-sizes)",
    )
    route.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="admission queue depth per replica (429 beyond it)",
    )
    route.add_argument(
        "--cache-ttl",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="replica result-cache TTL; 0 disables the result cache",
    )
    route.add_argument(
        "--storage",
        choices=("ram", "mmap"),
        default="ram",
        help="array tier of each replica (forwarded to `repro serve`)",
    )
    route.add_argument(
        "--index-build-block-rows",
        type=int,
        default=8192,
        metavar="N",
        help="out-of-core build block size per replica (with mmap)",
    )
    route.add_argument(
        "--max-build-memory-mb",
        type=float,
        default=None,
        metavar="MB",
        help="per-block build memory budget per replica (with mmap)",
    )
    # Router knobs.
    route.add_argument(
        "--virtual-nodes",
        type=int,
        default=64,
        metavar="N",
        help="virtual nodes per replica on the consistent-hash ring",
    )
    route.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="health probe sweep interval (bounds dead-replica routing)",
    )
    route.add_argument(
        "--attempt-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-attempt connect/read timeout toward a replica",
    )
    route.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="distinct replicas tried per request before 503",
    )
    route.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive failures opening a replica's circuit breaker",
    )
    route.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="open-breaker cool-down before a half-open trial",
    )
    # Supervisor knobs.
    route.add_argument(
        "--restart-base-delay",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="first restart backoff (doubles per consecutive restart)",
    )
    route.add_argument(
        "--max-restarts-in-window",
        type=int,
        default=5,
        metavar="N",
        help="restarts tolerated per window before quarantine",
    )
    route.add_argument(
        "--restart-window",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="sliding window for the restart budget",
    )
    route.add_argument(
        "--stagger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="delay between initial replica launches",
    )
    route.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after routing N HTTP requests (smoke tests)",
    )

    zoo = commands.add_parser(
        "zoo",
        help="run the detector-zoo evaluation grid on planted-outlier "
        "scenarios",
    )
    zoo.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: all). "
        "Pass 'list' to print the registered scenarios",
    )
    zoo.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME",
        help="detector to run (repeatable; default: all). "
        "Pass 'list' to print the registered detectors",
    )
    zoo.add_argument(
        "--seeds",
        default="0",
        help="comma-separated scenario seeds (default: 0)",
    )
    zoo.add_argument(
        "--k", type=int, default=5, help="precision@k cut-off (default: 5)"
    )
    zoo.add_argument(
        "--quick",
        action="store_true",
        help="small scenario sizes (CI smoke; also via BENCH_SMOKE=1)",
    )
    zoo.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the full JSON report to FILE",
    )

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _load_network(path: str) -> HeterogeneousInformationNetwork:
    if not Path(path).exists():
        raise ReproError(f"network file not found: {path}")
    return load_json(path)


def _resilience_policy(args):
    """A policy from ``--timeout`` / ``--max-memory-mb``, or ``None``."""
    timeout = getattr(args, "timeout", None)
    max_memory_mb = getattr(args, "max_memory_mb", None)
    if timeout is None and max_memory_mb is None:
        return None
    from repro.engine.resilience import ResiliencePolicy

    return ResiliencePolicy(timeout_seconds=timeout, max_memory_mb=max_memory_mb)


def _command_generate(args, out) -> int:
    if args.preset == "bibliographic":
        network = BibliographicNetworkGenerator(seed=args.seed).build_network()
    elif args.preset == "ego":
        from repro.datagen.synthetic import EgoNetworkSpec

        network = hub_ego_corpus(spec=EgoNetworkSpec(seed=args.seed)).network
    else:
        network = SecurityNetworkGenerator(seed=args.seed).generate().network
    save_json(network, args.out)
    print(f"wrote {network} to {args.out}", file=out)
    return 0


def _command_query(args, out) -> int:
    import warnings

    from repro.exceptions import DegradedResultWarning

    network = _load_network(args.network)
    detector = OutlierDetector(
        network,
        strategy=args.strategy,
        measure=args.measure,
        resilience=_resilience_policy(args),
    )
    with warnings.catch_warnings():
        # The degraded flag is reported explicitly below; the warning would
        # only duplicate it on stderr.
        warnings.simplefilter("ignore", DegradedResultWarning)
        result = detector.detect(args.query)
    if result.degraded:
        print(f"note: degraded result ({result.degradation_reason})", file=out)
    output_format = getattr(args, "format", "table")
    out_path = getattr(args, "out", None)
    if output_format == "html":
        from repro.report import write_html_report

        if out_path is None:
            raise ReproError("--format html requires --out FILE")
        write_html_report(result, out_path, query_text=args.query)
        print(f"wrote HTML report to {out_path}", file=out)
    elif output_format == "json":
        rendering = result.to_json()
        if out_path:
            Path(out_path).write_text(rendering + "\n", encoding="utf-8")
            print(f"wrote JSON to {out_path}", file=out)
        else:
            print(rendering, file=out)
    elif output_format == "csv":
        if out_path:
            with open(out_path, "w", encoding="utf-8", newline="") as handle:
                result.to_csv(handle)
            print(f"wrote CSV to {out_path}", file=out)
        else:
            result.to_csv(out)
    else:
        print(result.to_table(), file=out)
    if getattr(args, "distribution", False):
        print(file=out)
        print(score_distribution(result), file=out)
    if getattr(args, "stats", False) and result.stats is not None:
        print(file=out)
        print(
            f"wall time: {result.stats.wall_seconds * 1e3:.2f} ms", file=out
        )
        for phase, seconds in result.stats.breakdown().items():
            print(f"  {phase:<26s} {seconds * 1e3:8.2f} ms", file=out)
    return 0


def _command_workload(args, out) -> int:
    from repro.datagen.workloads import generate_query_set
    from repro.engine.latency import LatencyReport
    from repro.query.templates import QUERY_TEMPLATES

    network = _load_network(args.network)
    if args.queries_file:
        if not Path(args.queries_file).exists():
            raise ReproError(f"queries file not found: {args.queries_file}")
        text = Path(args.queries_file).read_text(encoding="utf-8")
        # Drop comment lines first, then split on the statement terminator.
        stripped = "\n".join(
            line for line in text.splitlines()
            if not line.lstrip().startswith("--")
        )
        queries = [
            chunk.strip() + ";" for chunk in stripped.split(";") if chunk.strip()
        ]
        if not queries:
            raise ReproError(f"no queries found in {args.queries_file}")
        source = f"file {args.queries_file}"
    else:
        template = next(t for t in QUERY_TEMPLATES if t.name == args.template)
        queries = generate_query_set(network, template, args.count, seed=args.seed)
        source = f"template {template.name}"
    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    if not strategies:
        raise ReproError("no strategies given")
    print(
        f"{source}, {len(queries)} queries, measure {args.measure}",
        file=out,
    )
    policy = _resilience_policy(args)
    for strategy_name in strategies:
        kwargs = {}
        if strategy_name == "spm":
            kwargs = {"spm_workload": queries, "spm_threshold": 0.01}
        detector = OutlierDetector(
            network,
            strategy=strategy_name,
            measure=args.measure,
            resilience=policy,
            **kwargs,
        )
        batch = detector.detect_many(queries, skip_failures=True)
        results, stats = batch
        report = LatencyReport.from_results(results)
        print(f"{strategy_name:>9}  {report.describe()}", file=out)
        print(
            f"{'':>9}  total={stats.wall_seconds * 1e3:.1f}ms  "
            f"index={detector.index_size_bytes() / 1e6:.2f}MB",
            file=out,
        )
        if batch.errors:
            print(
                f"{'':>9}  {len(batch.errors)} of {len(queries)} queries "
                "failed (first: "
                f"{next(iter(batch.errors.values()))})",
                file=out,
            )
    return 0


def _command_explain(args, out) -> int:
    network = _load_network(args.network)
    detector = OutlierDetector(network, strategy=args.strategy, measure=args.measure)
    print(detector.explain(args.query).describe(), file=out)
    return 0


def _command_suggest(args, out) -> int:
    network = _load_network(args.network)
    detector = OutlierDetector(network, strategy=args.strategy, measure=args.measure)
    advisor = QueryAdvisor(detector.strategy, measure=args.measure)
    suggestions = advisor.suggest(args.query, max_suggestions=args.max_suggestions)
    if not suggestions:
        print("(no suggestions)", file=out)
        return 0
    for suggestion in suggestions:
        print(
            f"[interestingness {suggestion.score:.3f}] "
            f"JUDGED BY {suggestion.feature_path}",
            file=out,
        )
        print(suggestion.result.to_table(max_rows=3), file=out)
        print(file=out)
    return 0


def _command_stats(args, out) -> int:
    from repro.hin.stats import network_summary

    network = _load_network(args.network)
    print(network_summary(network).describe(), file=out)
    return 0


def _command_schema(args, out) -> int:
    network = _load_network(args.network)
    schema = network.schema
    print("vertex types:", file=out)
    for vertex_type in sorted(schema.vertex_types):
        print(f"  {vertex_type} ({network.num_vertices(vertex_type)} vertices)", file=out)
    print("edge types:", file=out)
    seen = set()
    for edge_type in sorted(schema.edge_types, key=str):
        pair = frozenset((edge_type.source, edge_type.target))
        if pair in seen:
            continue
        seen.add(pair)
        print(f"  {edge_type.source} -- {edge_type.target}", file=out)
    return 0


def _command_serve(args, out) -> int:
    import signal
    import threading

    from repro.service import QueryService, ServiceConfig, make_server

    storage = getattr(args, "storage", "ram")
    storage_dir = getattr(args, "storage_dir", None)
    if not Path(args.network).exists():
        raise ReproError(f"network file not found: {args.network}")
    network = load_json(args.network, storage=storage, storage_dir=storage_dir)
    config = ServiceConfig(
        workers=args.workers,
        backend=args.backend,
        queue_depth=args.queue_depth,
        timeout_seconds=args.timeout,
        cache_ttl_seconds=args.cache_ttl if args.cache_ttl > 0 else None,
        cache_max_entries=0 if args.cache_ttl == 0 else 1024,
        subpath_cache_mb=args.subpath_cache_mb,
        adaptive=args.adaptive,
        reindex_interval_seconds=args.reindex_interval,
        reindex_min_queries=args.reindex_min_queries,
        admission_log_path=args.admission_log,
        max_index_mb=args.max_index_mb,
        storage=storage,
        storage_dir=storage_dir,
        index_build_block_rows=args.index_build_block_rows,
        max_build_memory_mb=args.max_build_memory_mb,
    )
    index = None
    if storage == "mmap" and args.strategy == "pm":
        # Build the full PM index out-of-core, in bounded row blocks, and
        # serve it through read-only file-backed views — the path that
        # keeps million-vertex networks off the RAM budget entirely.
        from repro.engine.index import build_pm_index_blocked
        from repro.hin.storage import MmapArrayStore

        store_dir = None
        if storage_dir is not None:
            store_dir = str(Path(storage_dir) / "pm-index")
            Path(store_dir).mkdir(parents=True, exist_ok=True)
        index = build_pm_index_blocked(
            network,
            block_rows=args.index_build_block_rows,
            max_build_memory_mb=args.max_build_memory_mb,
            store=MmapArrayStore(store_dir),
        )
    service = QueryService.from_network(
        network,
        config,
        strategy=args.strategy,
        measure=args.measure,
        index=index,
        row_cache_rows=args.row_cache_rows,
        resilience=_resilience_policy(args),
    )
    server = make_server(
        service,
        host=args.host,
        port=args.port,
        max_requests=args.max_requests,
    )
    # SIGTERM (systemd/container stop) takes the same clean path as
    # max-requests self-shutdown and Ctrl-C — but drain-aware: the service
    # flips to draining first, so /healthz answers 503 "draining" and the
    # replica router pulls this replica from rotation, then the socket
    # stays up until in-flight queries finish (bounded) before shutdown.
    # Signals only deliver to the main thread; when serve runs embedded on
    # another thread (tests), skip installation.
    def _drain_then_shutdown() -> None:
        import time as _time

        service.begin_drain()
        deadline = _time.monotonic() + 30.0
        while service.admission.in_flight > 0 and _time.monotonic() < deadline:
            _time.sleep(0.05)
        server.shutdown()

    if threading.current_thread() is threading.main_thread():
        signal.signal(
            signal.SIGTERM,
            lambda signum, frame: threading.Thread(
                target=_drain_then_shutdown, daemon=True
            ).start(),
        )
    host, port = server.server_address[:2]
    print(
        f"serving {args.network} on http://{host}:{port} "
        f"({service.handle.fingerprint}, {config.backend} backend, "
        f"{config.workers} workers"
        f"{' [auto]' if args.workers == 0 else ''}, "
        f"queue depth {args.queue_depth}, "
        f"index {service.handle.index_size_bytes() / 1e6:.2f} MB"
        f"{', adaptive reindex every ' + format(args.reindex_interval, 'g') + 's' if args.adaptive else ''})",
        file=out,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        # Drain before teardown: in-flight futures resolve and their
        # admission slots release before workers (and, for the process
        # backend, the shared-memory segment) go away.
        service.close(drain=True)
        print(
            f"served {server.served_count} requests; shut down cleanly",
            file=out,
            flush=True,
        )
    return 0


def _command_route(args, out) -> int:
    import os
    import signal
    import threading

    import repro
    from repro.service import (
        HealthProber,
        ReplicaSupervisor,
        Router,
        RouterConfig,
        SupervisorConfig,
        make_router_server,
    )

    if not Path(args.network).exists():
        raise ReproError(f"network file not found: {args.network}")

    # Replica children run `python -m repro`; make sure they can import it
    # even when the router itself was started with PYTHONPATH tricks.
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        package_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else package_root
    )

    serve_args = [
        "--strategy",
        args.strategy,
        "--measure",
        args.measure,
        "--backend",
        args.backend,
        "--workers",
        str(args.workers),
        "--queue-depth",
        str(args.queue_depth),
        "--cache-ttl",
        str(args.cache_ttl),
        "--storage",
        args.storage,
        "--index-build-block-rows",
        str(args.index_build_block_rows),
    ]
    if args.max_build_memory_mb is not None:
        serve_args += ["--max-build-memory-mb", str(args.max_build_memory_mb)]
    commands = ReplicaSupervisor.serve_commands(
        sys.executable, args.network, args.replicas, serve_args=serve_args
    )
    router_config = RouterConfig(
        virtual_nodes=args.virtual_nodes,
        probe_interval_seconds=args.probe_interval,
        attempt_timeout_seconds=args.attempt_timeout,
        max_attempts=args.max_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset,
    )
    supervisor_config = SupervisorConfig(
        restart_base_delay_seconds=args.restart_base_delay,
        max_restarts_in_window=args.max_restarts_in_window,
        restart_window_seconds=args.restart_window,
        stagger_seconds=args.stagger,
    )
    router = Router(list(commands), router_config)
    supervisor = ReplicaSupervisor(
        commands,
        supervisor_config,
        on_up=router.set_replica_address,
        on_down=router.mark_replica_down,
        env=env,
    )
    supervisor.start()
    prober = HealthProber(router)
    prober.start()
    server = make_router_server(
        router,
        host=args.host,
        port=args.port,
        supervisor=supervisor,
        max_requests=args.max_requests,
    )
    if threading.current_thread() is threading.main_thread():
        signal.signal(
            signal.SIGTERM,
            lambda signum, frame: threading.Thread(
                target=server.shutdown, daemon=True
            ).start(),
        )
    host, port = server.server_address[:2]
    print(
        f"routing {args.network} on http://{host}:{port} "
        f"({args.replicas} replicas, {args.backend} backend, "
        f"{args.max_attempts} attempts, "
        f"probe every {args.probe_interval:g}s)",
        file=out,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        prober.stop()
        supervisor.stop()
        print(
            f"routed {server.served_count} requests; shut down cleanly",
            file=out,
            flush=True,
        )
    return 0


def _command_zoo(args, out) -> int:
    import json
    import os

    from repro.zoo import (
        ZooRunConfig,
        available_detectors,
        available_scenarios,
        get_detector_spec,
        get_scenario,
        render_summary,
        run_zoo,
    )

    if args.scenario and "list" in args.scenario:
        for name in available_scenarios():
            print(f"{name:<20} {get_scenario(name).summary}", file=out)
        return 0
    if args.detector and "list" in args.detector:
        for name in available_detectors():
            print(f"{name:<10} {get_detector_spec(name).summary}", file=out)
        return 0

    try:
        seeds = tuple(
            int(chunk) for chunk in args.seeds.split(",") if chunk.strip()
        )
    except ValueError:
        raise ReproError(f"--seeds must be comma-separated integers, got {args.seeds!r}")
    # Validate names up front for a clean error instead of a mid-run one.
    for name in args.scenario or ():
        get_scenario(name)
    for name in args.detector or ():
        get_detector_spec(name)
    config = ZooRunConfig(
        scenarios=tuple(args.scenario or ()),
        detectors=tuple(args.detector or ()),
        seeds=seeds,
        k=args.k,
        quick=args.quick or os.environ.get("BENCH_SMOKE") == "1",
    )
    report = run_zoo(config)
    print(render_summary(report), file=out)
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote report to {args.out}", file=out)
    return 0


# ----------------------------------------------------------------------
# Shell
# ----------------------------------------------------------------------
_SHELL_HELP = """\
enter an outlier query ending with ';', or a dot-command:
  .help                 this message
  .schema               show vertex and edge types
  .strategy NAME        switch strategy (baseline / pm / spm)
  .measure NAME         switch measure (netout / pathsim / cossim / ...)
  .explain QUERY;       show the execution plan for a query
  .suggest QUERY;       suggest alternative feature meta-paths
  .quit                 exit"""


class _Shell:
    """The REPL behind ``repro shell`` (separated for testability)."""

    def __init__(self, network, strategy: str, measure: str, out) -> None:
        self.network = network
        self.measure = measure
        self.strategy_name = strategy
        self.detector = OutlierDetector(network, strategy=strategy, measure=measure)
        self.out = out

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def handle(self, line: str) -> bool:
        """Process one complete input; returns False to exit the loop."""
        line = line.strip()
        if not line:
            return True
        try:
            if line.startswith("."):
                return self._handle_dot(line)
            result = self.detector.detect(line)
            self._print(result.to_table())
        except ReproError as error:
            self._print(f"error: {error}")
        return True

    def _handle_dot(self, line: str) -> bool:
        command, __, rest = line.partition(" ")
        rest = rest.strip()
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            self._print(_SHELL_HELP)
        elif command == ".schema":
            for vertex_type in sorted(self.network.schema.vertex_types):
                count = self.network.num_vertices(vertex_type)
                self._print(f"  {vertex_type} ({count} vertices)")
        elif command == ".strategy":
            self.strategy_name = rest or self.strategy_name
            self.detector = OutlierDetector(
                self.network, strategy=self.strategy_name, measure=self.measure
            )
            self._print(f"strategy = {self.strategy_name}")
        elif command == ".measure":
            self.measure = rest or self.measure
            self.detector = OutlierDetector(
                self.network, strategy=self.strategy_name, measure=self.measure
            )
            self._print(f"measure = {self.measure}")
        elif command == ".explain":
            self._print(self.detector.explain(rest).describe())
        elif command == ".suggest":
            advisor = QueryAdvisor(self.detector.strategy, measure=self.measure)
            for suggestion in advisor.suggest(rest, max_suggestions=3):
                self._print(
                    f"[interestingness {suggestion.score:.3f}] "
                    f"JUDGED BY {suggestion.feature_path}"
                )
        else:
            self._print(f"unknown command {command!r}; try .help")
        return True


def _command_shell(args, out, stdin) -> int:
    network = _load_network(args.network)
    shell = _Shell(network, args.strategy, args.measure, out)
    print("repro shell — .help for commands, .quit to exit", file=out)
    buffer: list[str] = []
    for raw in stdin:
        line = raw.rstrip("\n")
        if line.strip().startswith("."):
            if not shell.handle(line):
                break
            continue
        buffer.append(line)
        if line.rstrip().endswith(";"):
            if not shell.handle("\n".join(buffer)):
                break
            buffer = []
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None, *, out=None, stdin=None) -> int:
    """CLI entry point; returns the process exit code.

    ``out`` and ``stdin`` are injectable for tests (default: real streams).
    """
    out = out if out is not None else sys.stdout
    stdin = stdin if stdin is not None else sys.stdin
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": lambda: _command_generate(args, out),
        "query": lambda: _command_query(args, out),
        "workload": lambda: _command_workload(args, out),
        "explain": lambda: _command_explain(args, out),
        "suggest": lambda: _command_suggest(args, out),
        "schema": lambda: _command_schema(args, out),
        "stats": lambda: _command_stats(args, out),
        "shell": lambda: _command_shell(args, out, stdin),
        "serve": lambda: _command_serve(args, out),
        "route": lambda: _command_route(args, out),
        "zoo": lambda: _command_zoo(args, out),
    }
    try:
        return handlers[args.command]()
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
