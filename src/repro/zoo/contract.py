"""The uniform detector contract of the zoo.

Every detector — NetOut through the engine, and every
:mod:`repro.baselines` method — is wrapped behind the same two-call
pygod-style surface:

* ``detector.fit(network)`` binds the detector to one heterogeneous
  network (and may precompute network-global state);
* ``detector.decision_scores(query)`` scores the query's candidate set and
  returns one **float64 score per candidate, higher = more outlying**.

The polarity is normalized here, at the contract boundary: NetOut's Ω and
PathSim-style similarities (where *lower* means more outlying) come back
negated, so the harness can rank, threshold, and compute AUC identically
for every method.

Contract invariants (pinned by ``tests/zoo/``):

* the score vector has exactly ``len(query.candidate_indices)`` entries of
  dtype float64, all finite;
* two calls with the same fitted detector and the same query return
  identical scores (determinism under a fixed ``query.seed``);
* relabeling vertices (changing insertion order) permutes the scores with
  them, for every detector whose registry entry declares
  ``equivariant=True``;
* a query whose member type or feature meta-path the fitted network's
  schema cannot serve raises the typed
  :class:`~repro.exceptions.UnsupportedSchemaError` — never a bare
  ``KeyError`` from deep inside materialization.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    ExecutionError,
    MeasureError,
    MetaPathError,
    UnsupportedSchemaError,
)
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.materialize import materialize
from repro.metapath.metapath import MetaPath

__all__ = ["ZooQuery", "Detector", "candidate_features"]


@dataclass(frozen=True)
class ZooQuery:
    """One scenario evaluation request, shared by every detector.

    Attributes
    ----------
    member_type:
        Vertex type of the candidate set.
    candidate_indices:
        Vertex indices (within ``member_type``) to score, in a fixed order;
        the score vector aligns with this order.
    candidate_names:
        Display names aligned with ``candidate_indices``.
    feature_path:
        The feature meta-path characterizing candidates (starts at
        ``member_type``).
    candidates_expr:
        The candidate set in the outlier query language (e.g.
        ``'author{"Prof. Hub"}.paper.author'``) — what the engine-backed
        NetOut detector executes, and provenance for the report.
    anchor:
        The scenario's query vertex (seed of the exploration); used by
        anchor-based detectors such as Personalized PageRank.
    seed:
        Determinism seed for stochastic detectors (NMF initialization,
        k-means seeding).
    """

    member_type: str
    candidate_indices: tuple[int, ...]
    candidate_names: tuple[str, ...]
    feature_path: MetaPath
    candidates_expr: str
    anchor: VertexId | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.candidate_indices) != len(self.candidate_names):
            raise MeasureError(
                "candidate_indices and candidate_names must align, got "
                f"{len(self.candidate_indices)} vs {len(self.candidate_names)}"
            )
        if self.feature_path.source != self.member_type:
            raise MeasureError(
                f"feature path {self.feature_path} must start at the member "
                f"type {self.member_type!r}"
            )


class Detector(abc.ABC):
    """Base class of every zoo detector (the uniform contract).

    Subclasses implement :meth:`_fit` (optional) and :meth:`_decision_scores`;
    the base class owns the lifecycle checks and the schema validation that
    turns incompatible scenarios into the typed
    :class:`~repro.exceptions.UnsupportedSchemaError`.
    """

    #: Registry name; subclasses set this.
    name: str = ""

    def __init__(self) -> None:
        self.network: HeterogeneousInformationNetwork | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def fit(self, network: HeterogeneousInformationNetwork) -> "Detector":
        """Bind the detector to ``network``; returns ``self`` for chaining."""
        if network is None:
            raise MeasureError(f"detector {self.name!r} needs a network to fit")
        self.network = network
        self._fit(network)
        return self

    def decision_scores(self, query: ZooQuery) -> np.ndarray:
        """Score ``query``'s candidates; higher = more outlying.

        Returns a float64 vector aligned with ``query.candidate_indices``.
        """
        if self.network is None:
            raise ExecutionError(
                f"detector {self.name!r} must be fit(network) before "
                "decision_scores()"
            )
        self._validate_schema(query)
        if not query.candidate_indices:
            return np.zeros(0, dtype=np.float64)
        scores = np.asarray(self._decision_scores(query), dtype=np.float64)
        if scores.shape != (len(query.candidate_indices),):
            raise MeasureError(
                f"detector {self.name!r} returned {scores.shape} scores for "
                f"{len(query.candidate_indices)} candidates"
            )
        return scores

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _fit(self, network: HeterogeneousInformationNetwork) -> None:
        """Optional subclass hook: precompute network-global state."""

    @abc.abstractmethod
    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        """Produce the raw score vector (higher = more outlying)."""

    # ------------------------------------------------------------------
    # Schema validation
    # ------------------------------------------------------------------
    def _validate_schema(self, query: ZooQuery) -> None:
        schema = self.network.schema
        if not schema.has_vertex_type(query.member_type):
            raise UnsupportedSchemaError(
                f"detector {self.name!r} cannot serve this scenario: the "
                f"fitted network has no vertex type {query.member_type!r}",
                detector=self.name,
                schema_detail=f"missing vertex type {query.member_type!r}",
            )
        try:
            query.feature_path.validate(schema)
        except MetaPathError as error:
            raise UnsupportedSchemaError(
                f"detector {self.name!r} cannot serve this scenario: feature "
                f"meta-path {query.feature_path} is invalid for the fitted "
                f"network's schema ({error})",
                detector=self.name,
                schema_detail=str(error),
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fitted" if self.network is not None else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"


def candidate_features(
    network: HeterogeneousInformationNetwork, query: ZooQuery
) -> np.ndarray:
    """Dense candidate neighbor vectors ``φ_P`` (one row per candidate).

    The shared feature extraction of the vector-space detectors: the feature
    meta-path's count matrix is materialized once and the candidate rows are
    gathered in ``candidate_indices`` order.
    """
    matrix = materialize(network, query.feature_path).tocsr()
    rows = matrix[np.asarray(query.candidate_indices, dtype=np.int64), :]
    return np.asarray(rows.todense(), dtype=np.float64)
