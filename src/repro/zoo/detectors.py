"""The eight zoo detectors: NetOut plus every baseline, one contract.

Each adapter normalizes one existing implementation — the engine-backed
NetOut detector and all seven :mod:`repro.baselines` methods — onto the
:class:`~repro.zoo.contract.Detector` surface.  Polarity is unified here:
similarity-flavoured methods (PathSim, SimRank, PPR) and NetOut's Ω
(lower = more outlying) are negated so every score vector reads
*higher = more outlying*.

====================  =============================================  =========
name                  wraps                                          polarity
====================  =============================================  =========
``netout``            :class:`repro.engine.OutlierDetector` (Ω)      negated
``lof``               :func:`repro.baselines.local_outlier_factor`   as-is
``knn``               :func:`repro.baselines.knn_distance_scores`    as-is
``pathsim``           :func:`repro.baselines.pathsim_matrix`         negated
``simrank``           :func:`repro.baselines.simrank_scores`         negated
``ppr``               :func:`repro.baselines.personalized_pagerank`  negated
``cdoutlier``         :func:`repro.baselines.\
community_distribution_outliers`                                     as-is
``nmf``               :func:`repro.baselines.factorization.nmf`      as-is
====================  =============================================  =========
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cdoutlier import community_distribution_outliers
from repro.baselines.factorization import nmf
from repro.baselines.knn_outlier import knn_distance_scores
from repro.baselines.lof import local_outlier_factor
from repro.baselines.pathsim import pathsim_matrix
from repro.baselines.ppr import personalized_pagerank
from repro.baselines.simrank import simrank_scores
from repro.engine.detector import OutlierDetector
from repro.exceptions import MeasureError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.zoo.contract import Detector, ZooQuery, candidate_features

__all__ = [
    "NetOutDetector",
    "LOFDetector",
    "KNNDetector",
    "PathSimDetector",
    "SimRankDetector",
    "PPRDetector",
    "CDOutlierDetector",
    "NMFResidualDetector",
]


class NetOutDetector(Detector):
    """The paper's detector, driven through the full query engine.

    ``decision_scores`` compiles the scenario into an outlier query (the
    declarative language, baseline materialization, NetOut measure) and
    reads back Ω for every candidate, negated so higher = more outlying.
    """

    name = "netout"

    def _fit(self, network: HeterogeneousInformationNetwork) -> None:
        self._engine = OutlierDetector(
            network, strategy="baseline", measure="netout", collect_stats=False
        )

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        text = (
            f"FIND OUTLIERS FROM {query.candidates_expr} "
            f"JUDGED BY {query.feature_path} "
            f"TOP {len(query.candidate_indices)};"
        )
        result = self._engine.detect(text)
        scores = np.empty(len(query.candidate_indices), dtype=np.float64)
        for position, index in enumerate(query.candidate_indices):
            omega = result.scores.get(VertexId(query.member_type, index))
            if omega is None:
                raise MeasureError(
                    f"engine result is missing candidate index {index} of "
                    f"type {query.member_type!r}"
                )
            scores[position] = -omega
        return scores


class LOFDetector(Detector):
    """Local Outlier Factor over the candidates' neighbor vectors."""

    name = "lof"

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        points = candidate_features(self.network, query)
        if points.shape[0] < 2:
            return np.zeros(points.shape[0], dtype=np.float64)
        min_pts = min(5, points.shape[0] - 1)
        return local_outlier_factor(points, min_pts=min_pts)


class KNNDetector(Detector):
    """Distance-based k-NN outlier scores (D^k) over neighbor vectors."""

    name = "knn"

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        points = candidate_features(self.network, query)
        if points.shape[0] < 2:
            return np.zeros(points.shape[0], dtype=np.float64)
        k = min(5, points.shape[0] - 1)
        return knn_distance_scores(points, k=k)


class PathSimDetector(Detector):
    """Outlierness as *low mean PathSim* to the other candidates.

    Similarity search turned outlier detector: the candidate least similar
    (on average, excluding itself) to its peers is the most outlying.
    """

    name = "pathsim"

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        phi = candidate_features(self.network, query)
        n = phi.shape[0]
        if n < 2:
            return np.zeros(n, dtype=np.float64)
        similarity = pathsim_matrix(phi)
        mean_to_others = (similarity.sum(axis=1) - similarity.diagonal()) / (
            n - 1
        )
        return -mean_to_others


class SimRankDetector(Detector):
    """Outlierness as *low mean SimRank* to the other candidates.

    The dense all-pairs SimRank matrix is computed once per fitted network
    (it is network-global) and reused across queries.
    """

    name = "simrank"

    def _fit(self, network: HeterogeneousInformationNetwork) -> None:
        self._similarity: np.ndarray | None = None
        self._offsets: dict[str, int] | None = None

    def _ensure_similarity(self) -> tuple[np.ndarray, dict[str, int]]:
        if self._similarity is None:
            self._similarity, self._offsets = simrank_scores(self.network)
        return self._similarity, self._offsets

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        n = len(query.candidate_indices)
        if n < 2:
            return np.zeros(n, dtype=np.float64)
        similarity, offsets = self._ensure_similarity()
        base = offsets[query.member_type]
        rows = np.asarray(query.candidate_indices, dtype=np.int64) + base
        block = similarity[np.ix_(rows, rows)]
        mean_to_others = (block.sum(axis=1) - block.diagonal()) / (n - 1)
        return -mean_to_others


class PPRDetector(Detector):
    """Outlierness as *low Personalized PageRank* from the scenario anchor.

    Requires the scenario to provide an anchor vertex (the exploration
    seed); raises :class:`~repro.exceptions.MeasureError` otherwise.
    """

    name = "ppr"

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        if query.anchor is None:
            raise MeasureError(
                "the PPR detector needs a scenario anchor vertex to seed the "
                "random walk"
            )
        scores, offsets = personalized_pagerank(self.network, query.anchor)
        base = offsets[query.member_type]
        rows = np.asarray(query.candidate_indices, dtype=np.int64) + base
        return -scores[rows]


class CDOutlierDetector(Detector):
    """Community-distribution outliers (Gupta, Gao & Han) over candidates."""

    name = "cdoutlier"

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        phi = candidate_features(self.network, query)
        if phi.shape[0] < 2:
            return np.zeros(phi.shape[0], dtype=np.float64)
        result = community_distribution_outliers(phi, seed=query.seed)
        return result.scores


class NMFResidualDetector(Detector):
    """NMF reconstruction residual: rows a low-rank model cannot explain.

    Factor the candidates' neighbor-vector matrix at a small rank and score
    each candidate by the L2 norm of its reconstruction error row — the
    classic residual-based detector the factorization primitives support.
    """

    name = "nmf"

    def _decision_scores(self, query: ZooQuery) -> np.ndarray:
        phi = candidate_features(self.network, query)
        if phi.shape[0] < 2:
            return np.zeros(phi.shape[0], dtype=np.float64)
        rank = max(1, min(4, min(phi.shape)))
        w, h = nmf(phi, rank, seed=query.seed)
        residual = phi - w @ h
        return np.sqrt(np.einsum("ij,ij->i", residual, residual))
