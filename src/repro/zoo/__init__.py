"""The detector zoo: every method, one contract, one evaluation grid.

A cross-detector evaluation harness for query-based outlier detection.
The zoo wraps NetOut (through the full query engine) and all seven
:mod:`repro.baselines` methods behind a uniform pygod-style
``fit(network)`` / ``decision_scores(query)`` contract
(:mod:`~repro.zoo.contract`), runs them over a planted-outlier scenario
grid with exact ground-truth labels (:mod:`~repro.zoo.scenarios`), and
reports ROC AUC, precision@k, and average precision per
(detector, scenario, seed) cell (:mod:`~repro.zoo.harness`).

Entry points: ``repro zoo`` on the command line,
``benchmarks/bench_detector_zoo.py`` for the committed benchmark, and
:func:`run_zoo` from code::

    from repro.zoo import ZooRunConfig, run_zoo
    report = run_zoo(ZooRunConfig(quick=True))
"""

from repro.zoo.contract import Detector, ZooQuery, candidate_features
from repro.zoo.harness import (
    REPORT_SCHEMA_VERSION,
    ZooRunConfig,
    render_summary,
    run_zoo,
    strip_timings,
)
from repro.zoo.registry import (
    DetectorSpec,
    available_detectors,
    get_detector_spec,
    make_detector,
)
from repro.zoo.scenarios import (
    Scenario,
    ScenarioInstance,
    available_scenarios,
    build_scenario,
    get_scenario,
)

__all__ = [
    "Detector",
    "ZooQuery",
    "candidate_features",
    "DetectorSpec",
    "available_detectors",
    "get_detector_spec",
    "make_detector",
    "Scenario",
    "ScenarioInstance",
    "available_scenarios",
    "get_scenario",
    "build_scenario",
    "ZooRunConfig",
    "run_zoo",
    "strip_timings",
    "render_summary",
    "REPORT_SCHEMA_VERSION",
]
