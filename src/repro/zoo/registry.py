"""The detector registry: names, constructors, and contract metadata.

One :class:`DetectorSpec` per zoo detector.  The spec carries the
properties the contract test-suite needs to know *per detector*:

* ``equivariant`` — whether the detector's scores are exactly permuted
  when the network's vertices are relabeled (insertion order changes).
  Vector-space and graph-walk detectors are; the NMF/k-means-based ones
  (``cdoutlier``, ``nmf``) are **not**, because their seeded random
  initialization depends on matrix row order, so the property suite skips
  the permutation-equivariance law for them (determinism and the other
  laws still apply).
* ``needs_anchor`` — whether the detector requires a scenario anchor
  vertex (only Personalized PageRank does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import MeasureError
from repro.zoo.contract import Detector
from repro.zoo.detectors import (
    CDOutlierDetector,
    KNNDetector,
    LOFDetector,
    NetOutDetector,
    NMFResidualDetector,
    PathSimDetector,
    PPRDetector,
    SimRankDetector,
)

__all__ = [
    "DetectorSpec",
    "available_detectors",
    "get_detector_spec",
    "make_detector",
]


@dataclass(frozen=True)
class DetectorSpec:
    """Registry entry for one zoo detector.

    Attributes
    ----------
    name:
        Registry key (also ``Detector.name``).
    factory:
        Zero-argument constructor producing a fresh, unfitted detector.
    summary:
        One-line description for listings and reports.
    equivariant:
        True when scores are exactly permutation-equivariant under vertex
        relabeling (see module docstring).
    needs_anchor:
        True when the detector requires ``ZooQuery.anchor``.
    """

    name: str
    factory: Callable[[], Detector]
    summary: str
    equivariant: bool = True
    needs_anchor: bool = False


_REGISTRY: dict[str, DetectorSpec] = {}


def _register(spec: DetectorSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DetectorSpec(
        name="netout",
        factory=NetOutDetector,
        summary="the paper's NetOut measure through the full query engine",
    )
)
_register(
    DetectorSpec(
        name="lof",
        factory=LOFDetector,
        summary="Local Outlier Factor over meta-path neighbor vectors",
    )
)
_register(
    DetectorSpec(
        name="knn",
        factory=KNNDetector,
        summary="k-NN distance outliers over meta-path neighbor vectors",
    )
)
_register(
    DetectorSpec(
        name="pathsim",
        factory=PathSimDetector,
        summary="low mean PathSim to peer candidates",
    )
)
_register(
    DetectorSpec(
        name="simrank",
        factory=SimRankDetector,
        summary="low mean SimRank to peer candidates",
    )
)
_register(
    DetectorSpec(
        name="ppr",
        factory=PPRDetector,
        summary="low Personalized PageRank mass from the scenario anchor",
        needs_anchor=True,
    )
)
_register(
    DetectorSpec(
        name="cdoutlier",
        factory=CDOutlierDetector,
        summary="community-distribution outliers (NMF + k-means patterns)",
        equivariant=False,
    )
)
_register(
    DetectorSpec(
        name="nmf",
        factory=NMFResidualDetector,
        summary="NMF low-rank reconstruction residual",
        equivariant=False,
    )
)


def available_detectors() -> tuple[str, ...]:
    """Registered detector names, in registration order."""
    return tuple(_REGISTRY)


def get_detector_spec(name: str) -> DetectorSpec:
    """Look up a registry entry; raises ``MeasureError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MeasureError(
            f"unknown detector {name!r}; available: "
            f"{', '.join(available_detectors())}"
        ) from None


def make_detector(name: str) -> Detector:
    """Construct a fresh, unfitted detector by registry name."""
    return get_detector_spec(name).factory()
