"""The zoo harness: run every detector over every scenario, emit a report.

:func:`run_zoo` drives the full grid.  For each (scenario, seed) it builds
the network once, evaluates the candidate set once (through the same
declarative set language the engine uses), then times each detector's
``fit`` and ``decision_scores`` separately and computes the shared metric
triple — ROC AUC, precision@k, average precision — against the planted
ground truth.

Reproducibility contract: the report is a pure function of
``(scenarios, detectors, seeds, k, quick)``.  Decision scores are rounded
to 9 significant digits before ranking and metric computation so the
committed golden fixture compares *exactly* across platforms (the rounding
is far coarser than any detector's score gaps and far finer than float64
platform jitter); ranking ties break by candidate name.  Timings are the
only non-deterministic fields, and :func:`strip_timings` removes them for
golden comparisons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.evaluator import SetEvaluator
from repro.engine.strategies import make_strategy
from repro.evalmetrics import average_precision, precision_at_k, roc_auc
from repro.exceptions import MeasureError
from repro.query.parser import parse_set_expression
from repro.utils.validation import require
from repro.zoo.contract import ZooQuery
from repro.zoo.registry import available_detectors, make_detector
from repro.zoo.scenarios import ScenarioInstance, available_scenarios, build_scenario

__all__ = [
    "ZooRunConfig",
    "run_zoo",
    "strip_timings",
    "render_summary",
    "REPORT_SCHEMA_VERSION",
]

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1

#: Significant digits scores are rounded to before ranking and metrics.
SCORE_DIGITS = 9


@dataclass(frozen=True)
class ZooRunConfig:
    """Parameters of one zoo run.

    Attributes
    ----------
    scenarios:
        Scenario names to run (default: every registered scenario).
    detectors:
        Detector names to run (default: every registered detector).
    seeds:
        Seeds; the grid is the cross product scenarios x detectors x seeds.
    k:
        Cut-off for precision@k and the reported top list.
    quick:
        Build the scenarios' small (CI smoke) sizes.
    """

    scenarios: tuple[str, ...] = ()
    detectors: tuple[str, ...] = ()
    seeds: tuple[int, ...] = (0,)
    k: int = 5
    quick: bool = False

    def __post_init__(self) -> None:
        require(len(self.seeds) >= 1, "at least one seed is required")
        require(self.k >= 1, "k must be >= 1")

    def resolved_scenarios(self) -> tuple[str, ...]:
        return self.scenarios or available_scenarios()

    def resolved_detectors(self) -> tuple[str, ...]:
        return self.detectors or available_detectors()


def _round_scores(scores: np.ndarray) -> np.ndarray:
    """Round to :data:`SCORE_DIGITS` significant digits (platform-stable)."""
    return np.asarray(
        [float(f"{value:.{SCORE_DIGITS}g}") for value in scores],
        dtype=np.float64,
    )


def _evaluate_candidates(
    instance: ScenarioInstance,
) -> tuple[str, tuple[int, ...], tuple[str, ...]]:
    """Evaluate the scenario's candidate expression to (type, indices, names)."""
    strategy = make_strategy(instance.network, "baseline")
    evaluator = SetEvaluator(strategy)
    ast = parse_set_expression(instance.candidates_expr)
    member_type, indices = evaluator.evaluate(ast)
    if not indices:
        raise MeasureError(
            f"scenario {instance.name!r} produced an empty candidate set"
        )
    names = tuple(
        instance.network.vertex_names(member_type)[index] for index in indices
    )
    return member_type, tuple(indices), names


def _scenario_entry(
    instance: ScenarioInstance, member_type: str, num_candidates: int
) -> dict:
    network = instance.network
    return {
        "archetype": instance.archetype,
        "member_type": member_type,
        "candidates_expr": instance.candidates_expr,
        "feature_path": str(instance.feature_path),
        "num_candidates": num_candidates,
        "num_outliers": len(instance.outliers),
        "outliers": sorted(instance.outliers),
        "vertices": network.num_vertices(),
        "edges": network.num_edges(),
    }


def run_zoo(config: ZooRunConfig | None = None) -> dict:
    """Run the detector x scenario x seed grid and return the report dict.

    The report is JSON-serializable::

        {
          "schema_version": 1,
          "quick": false, "k": 5, "seeds": [0],
          "detectors": ["netout", ...],
          "scenarios": {"attribute-outlier": {...}, ...},
          "results": [
            {"detector": "netout", "scenario": "attribute-outlier",
             "seed": 0,
             "metrics": {"roc_auc": ..., "precision_at_k": ...,
                         "average_precision": ...},
             "top": ["CrossField-1", ...],
             "fit_seconds": ..., "score_seconds": ...},
            ...
          ]
        }
    """
    config = config or ZooRunConfig()
    scenario_names = config.resolved_scenarios()
    detector_names = config.resolved_detectors()

    scenario_meta: dict[str, dict] = {}
    results: list[dict] = []
    for scenario_name in scenario_names:
        for seed in config.seeds:
            instance = build_scenario(scenario_name, seed, quick=config.quick)
            member_type, indices, names = _evaluate_candidates(instance)
            if scenario_name not in scenario_meta:
                scenario_meta[scenario_name] = _scenario_entry(
                    instance, member_type, len(indices)
                )
            query = ZooQuery(
                member_type=member_type,
                candidate_indices=indices,
                candidate_names=names,
                feature_path=instance.feature_path,
                candidates_expr=instance.candidates_expr,
                anchor=instance.anchor,
                seed=seed,
            )
            labels = [name in set(instance.outliers) for name in names]
            for detector_name in detector_names:
                detector = make_detector(detector_name)
                started = time.perf_counter()
                detector.fit(instance.network)
                fit_seconds = time.perf_counter() - started

                started = time.perf_counter()
                scores = _round_scores(detector.decision_scores(query))
                score_seconds = time.perf_counter() - started

                ranked = [
                    name
                    for _, name in sorted(
                        zip(scores, names), key=lambda pair: (-pair[0], pair[1])
                    )
                ]
                metrics = {
                    "roc_auc": roc_auc(labels, scores),
                    "precision_at_k": precision_at_k(
                        ranked, instance.outliers, config.k
                    ),
                    "average_precision": average_precision(
                        ranked, instance.outliers
                    ),
                }
                results.append(
                    {
                        "detector": detector_name,
                        "scenario": scenario_name,
                        "seed": seed,
                        "metrics": metrics,
                        "top": ranked[: config.k],
                        "fit_seconds": fit_seconds,
                        "score_seconds": score_seconds,
                    }
                )

    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "quick": config.quick,
        "k": config.k,
        "seeds": list(config.seeds),
        "detectors": list(detector_names),
        "scenarios": scenario_meta,
        "results": results,
    }


def strip_timings(report: dict) -> dict:
    """A copy of the report without the timing fields.

    This is the deterministic projection the golden-fixture regression test
    (and the CI ``zoo-smoke`` diff) compares: scores, rankings, and metrics
    must match exactly; wall-clock timings never do.
    """
    stripped = dict(report)
    stripped["results"] = [
        {
            key: value
            for key, value in entry.items()
            if not key.endswith("_seconds")
        }
        for entry in report["results"]
    ]
    return stripped


def render_summary(report: dict) -> str:
    """A fixed-width text table of the report (CLI output)."""
    lines = [
        f"{'scenario':<20} {'detector':<10} {'seed':>4} "
        f"{'auc':>7} {'p@k':>7} {'ap':>7}"
    ]
    for entry in report["results"]:
        metrics = entry["metrics"]
        lines.append(
            f"{entry['scenario']:<20} {entry['detector']:<10} "
            f"{entry['seed']:>4} "
            f"{metrics['roc_auc']:>7.3f} "
            f"{metrics['precision_at_k']:>7.3f} "
            f"{metrics['average_precision']:>7.3f}"
        )
    return "\n".join(lines)
