"""The planted-outlier scenario grid the zoo evaluates against.

Four archetypes, each driven by a :mod:`repro.datagen` generator that
reports the exact set of vertices it perturbed — the labels are the
planting, not a heuristic:

* ``attribute-outlier`` — the paper's Table 3 setting: cross-field authors
  in a hub's ego network whose venue *profiles* deviate while their degree
  looks ordinary (:func:`repro.datagen.synthetic.hub_ego_corpus`).
* ``structural-outlier`` — authors with anomalous *shape*: an order of
  magnitude more (single-author, every-community) papers than anyone else
  (:func:`repro.datagen.synthetic.structural_outlier_corpus`).
* ``fraud-ring`` — colluding users whose logins concentrate on one shared
  host set (:class:`repro.datagen.security.SecurityNetworkGenerator` with
  ``num_fraud_users > 0``).
* ``compromised-host`` — hosts with attack-category alert bursts on the
  same security schema (``num_compromised > 0``).

Every scenario builds deterministically from a seed, in a *full* size (the
benchmark default) and a *quick* size (CI smoke / BENCH_SMOKE) — both small
enough for the dense all-pairs baselines (SimRank) to stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datagen.security import SecurityNetworkGenerator
from repro.datagen.synthetic import (
    EgoNetworkSpec,
    GeneratorConfig,
    hub_ego_corpus,
    structural_outlier_corpus,
)
from repro.exceptions import MeasureError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.metapath import MetaPath

__all__ = [
    "ScenarioInstance",
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "build_scenario",
]


@dataclass(frozen=True)
class ScenarioInstance:
    """One concrete, built scenario: a network plus its labeled query.

    Attributes
    ----------
    name, archetype:
        Scenario identity (registry key and outlier archetype).
    network:
        The generated heterogeneous network.
    candidates_expr:
        Candidate set in the outlier query language.
    feature_path:
        Feature meta-path characterizing candidates.
    outliers:
        Ground-truth outlier names — exactly the vertices the generator
        planted.
    anchor:
        Query vertex anchoring the scenario (PPR seed); ``None`` when the
        scenario has no natural anchor.
    seed:
        The seed the instance was built from.
    """

    name: str
    archetype: str
    network: HeterogeneousInformationNetwork
    candidates_expr: str
    feature_path: MetaPath
    outliers: tuple[str, ...]
    anchor: VertexId | None
    seed: int


@dataclass(frozen=True)
class Scenario:
    """Registry entry: a named, seedable scenario builder."""

    name: str
    archetype: str
    summary: str
    builder: Callable[[int, bool], ScenarioInstance]

    def build(self, seed: int = 0, *, quick: bool = False) -> ScenarioInstance:
        """Build the scenario deterministically from ``seed``."""
        return self.builder(seed, quick)


def _clean_bibliographic_config(*, quick: bool) -> GeneratorConfig:
    """A small bibliographic corpus with missing-data noise disabled.

    Missing-data markers would add ``NULL`` authors to candidate sets and
    pollute the planted ground truth, so scenario corpora turn them off.
    """
    if quick:
        return GeneratorConfig(
            num_communities=2,
            authors_per_community=18,
            venues_per_community=3,
            terms_per_community=12,
            common_terms=6,
            papers_per_community=50,
            missing_venue_prob=0.0,
            missing_author_prob=0.0,
        )
    return GeneratorConfig(
        num_communities=3,
        authors_per_community=40,
        venues_per_community=4,
        terms_per_community=20,
        common_terms=10,
        papers_per_community=130,
        missing_venue_prob=0.0,
        missing_author_prob=0.0,
    )


def _build_attribute_outlier(seed: int, quick: bool) -> ScenarioInstance:
    config = _clean_bibliographic_config(quick=quick)
    spec = EgoNetworkSpec(
        hub_papers=12 if quick else 30,
        cross_field_count=2 if quick else 4,
        cross_field_papers=(20, 40) if quick else (40, 80),
        student_count=2 if quick else 4,
        seed=seed,
    )
    corpus = hub_ego_corpus(config, spec)
    network = corpus.network
    return ScenarioInstance(
        name="attribute-outlier",
        archetype="attribute",
        network=network,
        candidates_expr=f'author{{"{corpus.hub}"}}.paper.author',
        feature_path=MetaPath.parse("author.paper.venue"),
        outliers=tuple(corpus.cross_field),
        anchor=network.find_vertex("author", corpus.hub),
        seed=seed,
    )


def _build_structural_outlier(seed: int, quick: bool) -> ScenarioInstance:
    config = _clean_bibliographic_config(quick=quick)
    corpus = structural_outlier_corpus(
        config,
        num_outliers=2 if quick else 3,
        papers_per_outlier=15 if quick else 40,
        seed=seed,
    )
    network = corpus.network
    anchor_name = "C0-Author-0000"
    return ScenarioInstance(
        name="structural-outlier",
        archetype="structural",
        network=network,
        candidates_expr="author",
        feature_path=MetaPath.parse("author.paper.venue"),
        outliers=tuple(corpus.outlier_authors),
        anchor=network.find_vertex("author", anchor_name),
        seed=seed,
    )


def _build_fraud_ring(seed: int, quick: bool) -> ScenarioInstance:
    generator = SecurityNetworkGenerator(
        num_users=14 if quick else 40,
        num_hosts=18 if quick else 50,
        logins_per_user=12 if quick else 24,
        alerts_per_host=3 if quick else 8,
        num_compromised=0,
        num_fraud_users=3 if quick else 5,
        ring_size=3,
        seed=seed,
    )
    corpus = generator.generate()
    network = corpus.network
    return ScenarioInstance(
        name="fraud-ring",
        archetype="fraud-ring",
        network=network,
        candidates_expr="user",
        feature_path=MetaPath.parse("user.host"),
        outliers=tuple(corpus.fraud_users),
        anchor=network.find_vertex("user", corpus.analyst_users[0]),
        seed=seed,
    )


def _build_compromised_host(seed: int, quick: bool) -> ScenarioInstance:
    generator = SecurityNetworkGenerator(
        num_users=14 if quick else 40,
        num_hosts=18 if quick else 50,
        logins_per_user=12 if quick else 24,
        alerts_per_host=4 if quick else 8,
        num_compromised=2 if quick else 3,
        num_fraud_users=0,
        seed=seed,
    )
    corpus = generator.generate()
    network = corpus.network
    return ScenarioInstance(
        name="compromised-host",
        archetype="compromised-host",
        network=network,
        candidates_expr="host",
        feature_path=MetaPath.parse("host.alert.category"),
        outliers=tuple(corpus.compromised_hosts),
        anchor=network.find_vertex("user", corpus.analyst_users[0]),
        seed=seed,
    )


_REGISTRY: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> None:
    _REGISTRY[scenario.name] = scenario


_register(
    Scenario(
        name="attribute-outlier",
        archetype="attribute",
        summary="cross-field authors in a hub ego network (Table 3 setting)",
        builder=_build_attribute_outlier,
    )
)
_register(
    Scenario(
        name="structural-outlier",
        archetype="structural",
        summary="hyper-productive single-author accounts spanning every community",
        builder=_build_structural_outlier,
    )
)
_register(
    Scenario(
        name="fraud-ring",
        archetype="fraud-ring",
        summary="colluding users concentrated on one shared host set",
        builder=_build_fraud_ring,
    )
)
_register(
    Scenario(
        name="compromised-host",
        archetype="compromised-host",
        summary="hosts with attack-category alert bursts",
        builder=_build_compromised_host,
    )
)


def available_scenarios() -> tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raises ``MeasureError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MeasureError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        ) from None


def build_scenario(
    name: str, seed: int = 0, *, quick: bool = False
) -> ScenarioInstance:
    """Build a registered scenario deterministically from ``seed``."""
    return get_scenario(name).build(seed, quick=quick)
