"""Terminal visualization of outlier results (paper §8).

Section 8 suggests visualizing outliers "to provide more insight".  This
module renders the three views an analyst wants after a query, as plain
text (no plotting dependency):

* :func:`histogram` / :func:`sparkline` — generic numeric views;
* :func:`score_distribution` — where the top-k outliers sit inside the
  candidate Ω distribution;
* :func:`profile_comparison` — a candidate's neighbor vector side by side
  with the reference set's aggregate profile, showing *why* the vertex is
  an outlier (the dimensions where it deviates).
"""

from __future__ import annotations

import numpy as np

from repro.core.results import OutlierResult
from repro.engine.strategies import MaterializationStrategy
from repro.exceptions import ReproError
from repro.hin.network import VertexId
from repro.metapath.metapath import MetaPath

__all__ = [
    "histogram",
    "sparkline",
    "score_distribution",
    "profile_comparison",
]

_BLOCKS = " ▁▂▃▄▅▆▇█"
_BAR = "█"


def sparkline(values) -> str:
    """One-line block-character rendering of a numeric sequence.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    low, high = float(data.min()), float(data.max())
    if high == low:
        return _BLOCKS[1] * data.size
    scaled = (data - low) / (high - low) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(s))] for s in scaled)


def histogram(values, *, bins: int = 10, width: int = 40) -> str:
    """A horizontal ASCII histogram with bin ranges and counts."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return "(no data)"
    if bins < 1:
        raise ReproError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, low, high in zip(counts, edges, edges[1:]):
        bar = _BAR * int(round(count / peak * width))
        lines.append(f"[{low:>10.3g}, {high:>10.3g})  {bar} {count}")
    return "\n".join(lines)


def score_distribution(result: OutlierResult, *, bins: int = 12, width: int = 36) -> str:
    """Histogram of candidate Ω scores with the top-k outliers marked."""
    scores = np.fromiter(result.scores.values(), dtype=float)
    if scores.size == 0:
        return "(no candidates)"
    outlier_scores = {entry.score for entry in result.outliers}
    counts, edges = np.histogram(scores, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [
        f"Ω distribution over {result.candidate_count} candidates "
        f"(lower = more outlying; * bins hold top-{len(result)} outliers)"
    ]
    for count, low, high in zip(counts, edges, edges[1:]):
        has_outlier = any(
            low <= score < high or (high == edges[-1] and score == high)
            for score in outlier_scores
        )
        marker = "*" if has_outlier else " "
        bar = _BAR * int(round(count / peak * width))
        lines.append(f"{marker} [{low:>9.3g}, {high:>9.3g})  {bar} {count}")
    return "\n".join(lines)


def profile_comparison(
    strategy: MaterializationStrategy,
    path: MetaPath,
    vertex: VertexId,
    reference: list[int],
    *,
    top_dimensions: int = 10,
    width: int = 24,
) -> str:
    """Why is ``vertex`` an outlier?  Its φ profile vs the reference mean.

    Shows the ``top_dimensions`` feature dimensions (target-type vertices)
    with the largest combined mass, with paired bars: the candidate's
    path-count share on top, the reference set's average share below.

    Parameters
    ----------
    strategy:
        Used to materialize the neighbor vectors.
    path:
        The feature meta-path of the query.
    vertex:
        The candidate to explain (must have the path's source type).
    reference:
        Reference vertex indices (same type).
    """
    if vertex.type != path.source:
        raise ReproError(
            f"vertex {vertex} does not match the meta-path source {path.source!r}"
        )
    network = strategy.network
    phi_vertex = np.asarray(
        strategy.neighbor_row(path, vertex.index).todense()
    ).ravel()
    phi_reference = strategy.neighbor_matrix(path, reference)
    reference_mean = np.asarray(phi_reference.mean(axis=0)).ravel()

    vertex_share = phi_vertex / phi_vertex.sum() if phi_vertex.sum() else phi_vertex
    reference_share = (
        reference_mean / reference_mean.sum() if reference_mean.sum() else reference_mean
    )
    combined = vertex_share + reference_share
    order = np.argsort(-combined)[:top_dimensions]

    target_names = network.vertex_names(path.target)
    name_width = max(
        [len(target_names[i]) for i in order] + [len(path.target)]
    )
    peak = max(combined[order].max(), 1e-12)
    lines = [
        f"{network.vertex_name(vertex)} vs {len(reference)} reference "
        f"vertices along {path}",
        f"{'dimension':<{name_width}}  {'candidate':<{width}}  reference",
    ]
    for index in order:
        candidate_bar = _BAR * int(round(vertex_share[index] / peak * width))
        reference_bar = _BAR * int(round(reference_share[index] / peak * width))
        lines.append(
            f"{target_names[index]:<{name_width}}  "
            f"{candidate_bar:<{width}}  {reference_bar}"
        )
    return "\n".join(lines)
