"""Knowledge-graph (open-schema) front end (paper §8).

Section 8: *"our query language can be applied to open-schema networks such
as a knowledge graph, and the baseline implementation of NetOut should also
be applicable."*

* :mod:`~repro.kg.triples` — a triple store (subject, predicate, object)
  with type inference from ``type``-like predicates, plus two conversions
  to a HIN: **predicate reification** (each predicate becomes a statement
  vertex type, so meta-paths read ``person.acted_in.movie``) and direct
  edges (predicates between the same type pair merge).
* :mod:`~repro.kg.demo` — a deterministic movie-domain knowledge graph
  with a planted outlier, used by the tests and examples.
"""

from repro.kg.triples import KnowledgeGraph, Triple
from repro.kg.demo import movie_knowledge_graph

__all__ = ["KnowledgeGraph", "Triple", "movie_knowledge_graph"]
