"""A deterministic movie-domain knowledge graph with a planted outlier.

The graph has people, movies, and genres; people ``acted_in`` movies and
movies ``has_genre`` genres.  Most actors work within one genre cluster;
one planted actor's filmography spans an otherwise-unrelated genre — the
open-schema analogue of the paper's cross-field author.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.triples import KnowledgeGraph
from repro.utils.rng import ensure_rng

__all__ = ["MovieCorpus", "movie_knowledge_graph"]

_GENRES = ("drama", "comedy", "thriller", "scifi", "documentary")


@dataclass
class MovieCorpus:
    """The generated knowledge graph plus its planted ground truth."""

    graph: KnowledgeGraph
    outlier_actor: str
    cluster_actors: list[str]


def movie_knowledge_graph(
    *,
    actors_per_genre: int = 12,
    movies_per_genre: int = 20,
    seed: int = 0,
) -> MovieCorpus:
    """Build the demo graph.

    Each genre gets its own actor pool and movies; actors appear in 2-5
    movies of their genre.  The planted outlier, ``Kit Sterling``, acts in
    drama-cluster productions socially (shared movies with drama actors)
    but most of their filmography is documentaries.
    """
    rng = ensure_rng(seed)
    kg = KnowledgeGraph()
    cluster_actors: list[str] = []

    for genre in _GENRES:
        actors = [f"{genre.title()} Actor {i:02d}" for i in range(actors_per_genre)]
        movies = [f"{genre.title()} Movie {i:02d}" for i in range(movies_per_genre)]
        for actor in actors:
            kg.add(actor, "type", "person")
        for movie in movies:
            kg.add(movie, "type", "movie")
            kg.add(movie, "has genre", genre)
        kg.add(genre, "type", "genre")
        for movie in movies:
            cast_size = int(rng.integers(2, 5))
            cast = rng.choice(actors, size=cast_size, replace=False)
            for actor in cast:
                kg.add(str(actor), "acted in", movie)
        if genre == "drama":
            cluster_actors = actors

    # The planted outlier: one drama co-production, many documentaries.
    outlier = "Kit Sterling"
    kg.add(outlier, "type", "person")
    kg.add(outlier, "acted in", "Drama Movie 00")
    for i in range(8):
        title = f"Kit Documentary {i}"
        kg.add(title, "type", "movie")
        kg.add(title, "has genre", "documentary")
        kg.add(outlier, "acted in", title)

    return MovieCorpus(
        graph=kg,
        outlier_actor=outlier,
        cluster_actors=cluster_actors,
    )
