"""A triple store with HIN conversion for open-schema data.

A knowledge graph arrives as ``(subject, predicate, object)`` triples with
no fixed schema.  :class:`KnowledgeGraph` ingests triples, infers entity
types from ``type``-like predicates, and converts to a
:class:`~repro.hin.network.HeterogeneousInformationNetwork` in one of two
modes:

* **Reified** (default): every data predicate becomes a *statement* vertex
  type; a triple ``(s, p, o)`` materializes a statement vertex of type
  ``p`` linked to ``s`` and ``o``.  Meta-paths then spell out relations —
  ``person.acted_in.movie.has_genre.genre`` — which keeps distinct
  predicates between the same type pair distinguishable.
* **Direct**: triples become plain typed edges; predicates between the
  same (subject type, object type) pair merge.  Cheaper, lossier.
"""

from __future__ import annotations

import io
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.exceptions import ReproError
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import NetworkSchema

__all__ = ["Triple", "KnowledgeGraph"]

#: Predicates treated as type declarations (case-insensitive).
TYPE_PREDICATES = frozenset({"type", "a", "rdf:type", "isa", "instance_of"})

_SANITIZE_PATTERN = re.compile(r"[^0-9a-zA-Z_]+")


def sanitize_identifier(text: str) -> str:
    """Coerce arbitrary predicate/type text into a Python identifier.

    >>> sanitize_identifier("acted in")
    'acted_in'
    >>> sanitize_identifier("rdf:type")
    'rdf_type'
    """
    cleaned = _SANITIZE_PATTERN.sub("_", text.strip()).strip("_")
    if not cleaned:
        raise ReproError(f"cannot derive an identifier from {text!r}")
    if cleaned[0].isdigit():
        cleaned = f"t_{cleaned}"
    return cleaned.lower()


@dataclass(frozen=True)
class Triple:
    """One (subject, predicate, object) statement."""

    subject: str
    predicate: str
    object: str


class KnowledgeGraph:
    """An open-schema triple store convertible to a HIN.

    Examples
    --------
    >>> kg = KnowledgeGraph()
    >>> kg.add("Tom", "type", "person")
    >>> kg.add("Heat", "type", "movie")
    >>> kg.add("Tom", "acted in", "Heat")
    >>> network = kg.to_hin()
    >>> network.schema.has_vertex_type("acted_in")
    True
    """

    def __init__(self, *, default_type: str = "entity") -> None:
        self._triples: list[Triple] = []
        self._types: dict[str, str] = {}
        self.default_type = sanitize_identifier(default_type)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add(self, subject: str, predicate: str, object_: str) -> None:
        """Add one triple; ``type``-like predicates set the subject's type."""
        if not subject or not predicate or not object_:
            raise ReproError("triples need non-empty subject/predicate/object")
        if predicate.lower() in TYPE_PREDICATES:
            declared = sanitize_identifier(object_)
            existing = self._types.get(subject)
            if existing is not None and existing != declared:
                raise ReproError(
                    f"conflicting types for {subject!r}: {existing!r} vs "
                    f"{declared!r}"
                )
            self._types[subject] = declared
            return
        self._triples.append(Triple(subject, predicate, object_))

    def add_triples(self, triples: Iterable[tuple[str, str, str]]) -> None:
        for subject, predicate, object_ in triples:
            self.add(subject, predicate, object_)

    @classmethod
    def from_text(cls, text: str | TextIO, *, default_type: str = "entity") -> "KnowledgeGraph":
        """Parse tab-separated triples, one per line (``#`` comments allowed)."""
        handle = io.StringIO(text) if isinstance(text, str) else text
        kg = cls(default_type=default_type)
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if len(fields) != 3:
                raise ReproError(
                    f"triple line {line_number}: expected 3 tab-separated "
                    f"fields, got {len(fields)}"
                )
            kg.add(*fields)
        return kg

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def triple_count(self) -> int:
        """Number of data triples (type declarations excluded)."""
        return len(self._triples)

    def triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    def entity_type(self, entity: str) -> str:
        """The declared (or default) type of an entity."""
        return self._types.get(entity, self.default_type)

    def entities(self) -> set[str]:
        """Every entity mentioned as subject or object, or typed."""
        names = set(self._types)
        for triple in self._triples:
            names.add(triple.subject)
            names.add(triple.object)
        return names

    def predicates(self) -> set[str]:
        return {sanitize_identifier(t.predicate) for t in self._triples}

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_hin(self, *, reify_predicates: bool = True) -> HeterogeneousInformationNetwork:
        """Convert the graph into a HIN.

        See the module docstring for the two modes.  In reified mode a
        predicate name that collides with an entity type is rejected (it
        would make meta-paths ambiguous).
        """
        entity_types = {self.entity_type(e) for e in self.entities()}
        predicates = self.predicates()
        schema = NetworkSchema()
        for entity_type in sorted(entity_types):
            schema.add_vertex_type(entity_type)

        if reify_predicates:
            collision = entity_types & predicates
            if collision:
                raise ReproError(
                    f"predicate names collide with entity types: "
                    f"{sorted(collision)}; rename or use "
                    "reify_predicates=False"
                )
            for predicate in sorted(predicates):
                schema.add_vertex_type(predicate)
            for triple in self._triples:
                predicate = sanitize_identifier(triple.predicate)
                schema.add_edge_type(self.entity_type(triple.subject), predicate)
                schema.add_edge_type(predicate, self.entity_type(triple.object))
        else:
            for triple in self._triples:
                schema.add_edge_type(
                    self.entity_type(triple.subject),
                    self.entity_type(triple.object),
                )

        network = HeterogeneousInformationNetwork(schema)
        for entity in sorted(self.entities()):
            network.add_vertex(self.entity_type(entity), entity)

        for position, triple in enumerate(self._triples):
            subject = network.find_vertex(self.entity_type(triple.subject), triple.subject)
            object_ = network.find_vertex(self.entity_type(triple.object), triple.object)
            if reify_predicates:
                predicate = sanitize_identifier(triple.predicate)
                statement = network.add_vertex(
                    predicate, f"{triple.subject}|{predicate}|{triple.object}#{position}"
                )
                network.add_edge(subject, statement)
                network.add_edge(statement, object_)
            else:
                network.add_edge(subject, object_)
        return network
