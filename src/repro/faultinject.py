"""Deterministic, seedable fault injection for resilience testing.

Production code is instrumented with named *fault points* — cheap calls of
the form ``faultinject.check("index_build")`` placed at the seams where real
deployments fail: index construction, cache reads, sparse matrix products,
and index file I/O.  When no injector is active a check is a single global
read; tests activate a :class:`FaultInjector` (usually via the
:func:`inject` context manager) to make chosen points raise on a
deterministic schedule.

Determinism matters: the resilience test suite must prove *exactly* which
rung of the degradation ladder answered, so every injector is driven by a
seeded :class:`random.Random` and per-point call counters rather than wall
clock or global randomness.

Example
-------
>>> from repro import faultinject
>>> from repro.exceptions import TransientFaultError
>>> rule = faultinject.FaultRule(point="index_build", times=2)
>>> with faultinject.inject(rule) as injector:
...     for _ in range(3):
...         try:
...             faultinject.check("index_build")
...         except TransientFaultError:
...             pass
>>> injector.fired["index_build"]
2
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.exceptions import ExecutionError, TransientFaultError

__all__ = [
    "FAULT_POINTS",
    "FaultRule",
    "FaultInjector",
    "check",
    "inject",
    "active_injector",
]

#: The instrumented seams, in the order a query traverses them.  The
#: ``service.enqueue`` point sits in the service layer's admission path so
#: the harness can simulate queue stalls and verify load-shedding behavior.
#: The ``router.*`` points sit in the replica router's HTTP client
#: (:mod:`repro.service.router`), one per phase of a proxied request —
#: ``connect`` (connection refused / replica gone), ``send`` (request lost
#: mid-write), and ``recv`` (mid-body disconnect, or slow-response latency
#: via :attr:`FaultRule.delay_seconds`).
FAULT_POINTS = (
    "index_build",
    "cache_read",
    "matrix_multiply",
    "io",
    "service.enqueue",
    "router.connect",
    "router.send",
    "router.recv",
    "subpath.get",
    "subpath.put",
)


@dataclass
class FaultRule:
    """When and how one fault point misbehaves.

    Attributes
    ----------
    point:
        Which instrumented seam this rule applies to (see ``FAULT_POINTS``).
    probability:
        Chance that an eligible call fires, drawn from the injector's seeded
        RNG.  ``1.0`` (the default) makes the schedule fully deterministic.
    times:
        Fire at most this many times, then go quiet (``None`` = unlimited).
        ``times=N`` with ``probability=1.0`` models "the first N attempts
        fail, then the dependency recovers" — the shape retry logic and
        circuit breakers are tested against.
    after_calls:
        Skip this many calls at the point before becoming eligible.
    error:
        Exception type raised when the rule fires (default
        :class:`~repro.exceptions.TransientFaultError`).
    message:
        Optional message override for the raised error.
    delay_seconds:
        When set, a firing rule *delays* the call (through the injector's
        injectable ``sleep``) instead of raising — latency injection for
        slow-dependency scenarios (e.g. a replica answering just past the
        router's per-attempt timeout).  A delayed call then proceeds
        normally; combine two rules (one delaying, one raising) to model a
        slow *and* failing dependency.
    """

    point: str
    probability: float = 1.0
    times: int | None = None
    after_calls: int = 0
    error: type[Exception] = TransientFaultError
    message: str = ""
    delay_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ExecutionError(
                f"unknown fault point {self.point!r}; expected one of "
                f"{FAULT_POINTS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ExecutionError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_seconds is not None and self.delay_seconds < 0:
            raise ExecutionError(
                f"fault delay must be >= 0, got {self.delay_seconds}"
            )


@dataclass
class FaultInjector:
    """Evaluates :class:`FaultRule` schedules against per-point call counts.

    Not installed globally until :meth:`activate` (or the :func:`inject`
    context manager) is used.  ``calls`` and ``fired`` expose per-point
    counters so tests can assert exactly how many faults were injected.
    ``sleep`` implements delay rules and is injectable so latency-injection
    tests can run in zero wall time.
    """

    rules: Sequence[FaultRule] = ()
    seed: int = 0
    calls: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._rule_fired = [0] * len(self.rules)

    def check(self, point: str) -> None:
        """Record one call at ``point`` and raise if a rule says so."""
        call_number = self.calls.get(point, 0)
        self.calls[point] = call_number + 1
        for position, rule in enumerate(self.rules):
            if rule.point != point:
                continue
            if call_number < rule.after_calls:
                continue
            if rule.times is not None and self._rule_fired[position] >= rule.times:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            self._rule_fired[position] += 1
            self.fired[point] = self.fired.get(point, 0) + 1
            if rule.delay_seconds is not None:
                # Latency injection: stall the call, then let it proceed
                # (later rules at the same point still get their say).
                self.sleep(rule.delay_seconds)
                continue
            message = rule.message or (
                f"injected fault at {point!r} "
                f"(call {call_number}, firing {self._rule_fired[position]})"
            )
            raise rule.error(message)

    # ------------------------------------------------------------------
    # Global installation
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Install this injector as the process-wide active one."""
        global _ACTIVE
        _ACTIVE = self

    def deactivate(self) -> None:
        """Remove this injector if it is the active one."""
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None


_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The currently installed injector, or ``None`` in production."""
    return _ACTIVE


def check(point: str) -> None:
    """Fault-point hook called from instrumented production code.

    A no-op (one global read) unless an injector is active.
    """
    if _ACTIVE is not None:
        _ACTIVE.check(point)


@contextmanager
def inject(*rules: FaultRule, seed: int = 0) -> Iterator[FaultInjector]:
    """Activate a fresh injector for the duration of a ``with`` block.

    Yields the injector so the block (or assertions after it) can inspect
    ``calls`` / ``fired`` counters.
    """
    injector = FaultInjector(rules=list(rules), seed=seed)
    injector.activate()
    try:
        yield injector
    finally:
        injector.deactivate()
