"""Execution statistics for the efficiency study (paper Figures 3-5).

The paper's in-depth analysis (Figure 4) splits query processing time into
three phases, which we reproduce verbatim:

* ``PHASE_NOT_INDEXED`` — meta-path materialization by traversal, for
  vertices without a pre-materialized row;
* ``PHASE_INDEXED`` — loading pre-materialized rows from the index;
* ``PHASE_SCORING`` — the outlierness (NetOut) calculation itself.

:class:`ExecutionStats` accumulates these per query and merges across a
query set, which is exactly how the figures aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.timers import PhaseTimer

__all__ = [
    "PHASE_NOT_INDEXED",
    "PHASE_INDEXED",
    "PHASE_SCORING",
    "ExecutionStats",
]

PHASE_NOT_INDEXED = "not_indexed_vectors"
PHASE_INDEXED = "indexed_vectors"
PHASE_SCORING = "outlierness_calculation"


@dataclass
class ExecutionStats:
    """Per-phase timings and materialization counters for query execution.

    Attributes
    ----------
    timer:
        Wall-clock accumulation per phase (seconds).
    traversed_vectors:
        Number of neighbor vectors materialized by traversal.  In block
        mode this counts per-vertex *equivalents*: a bulk traversal of a
        32-row block adds 32, and SPM segment expansions count one per
        expanded element, matching the row-at-a-time accounting exactly.
    indexed_vectors:
        Number of neighbor vectors served (at least partly) from an index
        (same per-vertex-equivalent convention as ``traversed_vectors``).
    materialized_blocks:
        Number of bulk materialization blocks (≤ ``BLOCK_ROWS`` rows each)
        processed by ``neighbor_matrix`` calls.  Zero for purely
        row-at-a-time executions.
    queries:
        Number of queries folded into this object (1 for a single run,
        larger after :meth:`merge`).
    """

    timer: PhaseTimer = field(default_factory=PhaseTimer)
    traversed_vectors: int = 0
    indexed_vectors: int = 0
    materialized_blocks: int = 0
    queries: int = 1
    #: End-to-end wall time of the query (parse to ranked result).  The
    #: three tracked phases cover materialization and scoring; wall time
    #: additionally includes parsing, validation, and set bookkeeping —
    #: this is the "total execution time" Figure 3 plots.
    wall_seconds: float = 0.0

    # -- phase accessors -------------------------------------------------
    @property
    def not_indexed_seconds(self) -> float:
        return self.timer.total(PHASE_NOT_INDEXED)

    @property
    def indexed_seconds(self) -> float:
        return self.timer.total(PHASE_INDEXED)

    @property
    def scoring_seconds(self) -> float:
        return self.timer.total(PHASE_SCORING)

    @property
    def materialization_seconds(self) -> float:
        """Total neighbor-vector materialization time, both phases.

        The quantity the strategy comparison (Figure 3) actually varies:
        parse/validate/score time is identical across strategies, so
        strategy benchmarks compare this rather than ``wall_seconds``.
        """
        return self.not_indexed_seconds + self.indexed_seconds

    @property
    def total_seconds(self) -> float:
        return self.timer.grand_total

    # -- aggregation -----------------------------------------------------
    def merge(self, other: "ExecutionStats") -> None:
        """Fold another query's stats into this aggregate."""
        self.timer.merge(other.timer)
        self.traversed_vectors += other.traversed_vectors
        self.indexed_vectors += other.indexed_vectors
        self.materialized_blocks += other.materialized_blocks
        self.queries += other.queries
        self.wall_seconds += other.wall_seconds

    @classmethod
    def aggregate(cls, stats: list["ExecutionStats"]) -> "ExecutionStats":
        """Combine a list of per-query stats into one (``queries`` = total)."""
        total = cls(queries=0)
        for item in stats:
            total.merge(item)
        return total

    def breakdown(self) -> dict[str, float]:
        """Phase-name → seconds map in paper (Figure 4) order."""
        return {
            PHASE_NOT_INDEXED: self.not_indexed_seconds,
            PHASE_INDEXED: self.indexed_seconds,
            PHASE_SCORING: self.scoring_seconds,
        }

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionStats(queries={self.queries}, "
            f"total={self.total_seconds * 1e3:.2f} ms, "
            f"not_indexed={self.not_indexed_seconds * 1e3:.2f} ms, "
            f"indexed={self.indexed_seconds * 1e3:.2f} ms, "
            f"scoring={self.scoring_seconds * 1e3:.2f} ms)"
        )
