"""The user-facing outlier-detection facade.

:class:`OutlierDetector` bundles a network, a materialization strategy, and
an outlierness measure behind one ``detect(query_text)`` call — the
"query-based outlier detection system" of the paper, in library form.

Examples
--------
>>> from repro import OutlierDetector
>>> from repro.datagen.fixtures import figure1_network
>>> detector = OutlierDetector(figure1_network())
>>> result = detector.detect(
...     'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
...     'JUDGED BY author.paper.venue TOP 2;')
>>> [entry.rank for entry in result]
[1, 2]
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.measures import Measure
from repro.core.results import OutlierResult
from repro.engine.executor import BatchExecution, QueryExecutor
from repro.engine.index import MetaPathIndex
from repro.engine.optimizer import WorkloadAnalyzer
from repro.engine.plan import QueryPlan, explain
from repro.engine.stats import ExecutionStats
from repro.engine.strategies import MaterializationStrategy, make_strategy
from repro.exceptions import ExecutionError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.query.ast import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.deadline import Deadline
    from repro.engine.resilience import ResiliencePolicy

__all__ = ["OutlierDetector"]


class OutlierDetector:
    """Query-based outlier detection over one heterogeneous network.

    Parameters
    ----------
    network:
        The heterogeneous information network to query.
    strategy:
        ``"baseline"`` (default), ``"pm"``, ``"spm"``, or a pre-built
        :class:`~repro.engine.strategies.MaterializationStrategy` instance.
        ``"pm"`` builds the full length-2 index up front.
    measure:
        Outlierness measure name (``"netout"``, ``"pathsim"``, ``"cossim"``)
        or instance.  Lower scores mean stronger outliers.
    index:
        Optional pre-built index for ``"pm"``/``"spm"``.
    spm_workload, spm_threshold:
        For ``"spm"`` without a pre-built index: the initialization query
        set and relative-frequency threshold used to select vertices to
        index (paper §6.2; threshold defaults to the paper's 0.01).
    combine:
        Multi-meta-path combination mode: ``"score"`` (default), ``"rank"``,
        or ``"connectivity"`` — see
        :class:`~repro.engine.executor.QueryExecutor`.
    collect_stats:
        Attach per-phase execution statistics to every result.
    resilience:
        Optional :class:`~repro.engine.resilience.ResiliencePolicy`.  When
        set (and ``strategy`` is a name, not a pre-built instance), the
        detector executes through the degradation ladder — the requested
        rung falling back toward on-the-fly counting on index-build or
        lookup failure — under the policy's per-query deadline, memory
        guardrails, retry, and circuit-breaker settings.  Degraded answers
        come back flagged ``degraded=True`` rather than failing.
    """

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        *,
        strategy: str | MaterializationStrategy = "baseline",
        measure: Measure | str = "netout",
        index: MetaPathIndex | None = None,
        spm_workload: Sequence[str | Query] | None = None,
        spm_threshold: float = 0.01,
        combine: str = "score",
        collect_stats: bool = True,
        resilience: "ResiliencePolicy | None" = None,
    ) -> None:
        self.network = network
        if isinstance(strategy, MaterializationStrategy):
            self.strategy = strategy
        else:
            selected: Iterable[VertexId] | None = None
            if strategy.lower() == "spm" and index is None and spm_workload is not None:
                analyzer = WorkloadAnalyzer(network)
                analyzer.analyze_many(spm_workload)
                selected = analyzer.frequent_vertices(spm_threshold)
            if resilience is not None and resilience.allow_degraded and index is None:
                from repro.engine.resilience import (
                    DEGRADATION_LADDER,
                    FallbackStrategy,
                )

                requested = strategy.lower()
                if requested not in DEGRADATION_LADDER:
                    raise ExecutionError(
                        f"unknown strategy {strategy!r}; expected one of "
                        f"{DEGRADATION_LADDER}"
                    )
                ladder = DEGRADATION_LADDER[DEGRADATION_LADDER.index(requested):]
                self.strategy = FallbackStrategy(
                    network,
                    ladder=ladder,
                    policy=resilience,
                    spm_selected=selected,
                )
            else:
                self.strategy = make_strategy(
                    network, strategy, index=index, selected=selected
                )
        self._executor = QueryExecutor(
            self.strategy,
            measure,
            combine=combine,
            collect_stats=collect_stats,
            resilience=resilience,
        )

    @property
    def measure_name(self) -> str:
        return self._executor.measure.name

    def detect(
        self, query: str | Query, *, deadline: "Deadline | None" = None
    ) -> OutlierResult:
        """Execute an outlier query and return the ranked result.

        ``deadline`` optionally overrides the per-call time budget (the
        resilience policy's timeout otherwise applies) — the query service
        uses this to enforce per-request deadlines over a shared detector.
        """
        return self._executor.execute(query, deadline=deadline)

    def detect_with_features(
        self,
        candidates: str,
        features,
        *,
        reference: str | None = None,
        top_k: int = 10,
    ) -> OutlierResult:
        """Score a queried candidate set with *custom* vertex features.

        The paper's §8 "alternative query language design": users may want
        to characterize vertices by functions that are not meta-path based.
        This keeps the declarative set language for ``candidates`` /
        ``reference`` but takes the characterization from the caller.

        Parameters
        ----------
        candidates:
            A set expression in the query language (e.g.
            ``'author{"X"}.paper.author'``).
        features:
            Either a callable ``f(network, member_type, vertex_indices) ->
            (n x d) array-like`` producing one feature row per vertex in
            order, or a pre-computed matrix over *all* vertices of the
            member type (rows are selected by index).
        reference:
            Optional set expression for the reference set (defaults to the
            candidate set).
        top_k:
            Number of outliers to return.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.datagen.fixtures import figure1_network
        >>> net = figure1_network()
        >>> detector = OutlierDetector(net)
        >>> def paper_count(network, member_type, indices):
        ...     return np.array(
        ...         [[network.degree(VertexId(member_type, i), "paper")]
        ...          for i in indices])
        >>> result = detector.detect_with_features("author", paper_count, top_k=1)
        >>> len(result)
        1
        """
        import numpy as np
        from scipy import sparse as _sparse

        from repro.engine.evaluator import SetEvaluator
        from repro.exceptions import ExecutionError
        from repro.query.parser import parse_set_expression
        from repro.query.semantics import member_type_of

        if top_k < 1:
            raise ExecutionError(f"top_k must be >= 1, got {top_k}")
        evaluator = SetEvaluator(self.strategy)
        candidate_ast = parse_set_expression(candidates)
        member_type_of(self.network.schema, candidate_ast)  # validate
        member_type, candidate_indices = evaluator.evaluate(candidate_ast)
        if not candidate_indices:
            raise ExecutionError("the candidate set is empty")
        if reference is not None:
            reference_ast = parse_set_expression(reference)
            reference_type, reference_indices = evaluator.evaluate(reference_ast)
            if reference_type != member_type:
                raise ExecutionError(
                    "candidate and reference sets must share a member type: "
                    f"{member_type!r} vs {reference_type!r}"
                )
            if not reference_indices:
                raise ExecutionError("the reference set is empty")
        else:
            reference_indices = list(candidate_indices)

        def rows_for(indices):
            if callable(features):
                matrix = features(self.network, member_type, indices)
            else:
                full = features
                matrix = (
                    full[indices, :]
                    if _sparse.issparse(full)
                    else np.asarray(full, dtype=float)[indices, :]
                )
            if _sparse.issparse(matrix):
                matrix = matrix.tocsr()
                rows = matrix.shape[0]
            else:
                matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
                rows = matrix.shape[0]
            if rows != len(indices):
                raise ExecutionError(
                    f"feature rows ({rows}) do not match the vertex count "
                    f"({len(indices)})"
                )
            return matrix

        phi_candidates = rows_for(candidate_indices)
        if reference_indices == candidate_indices:
            phi_reference = phi_candidates
        else:
            phi_reference = rows_for(reference_indices)
        scores = self._executor.measure.score(phi_candidates, phi_reference)

        names = self.network.vertex_names(member_type)
        score_map = {
            VertexId(member_type, index): float(score)
            for index, score in zip(candidate_indices, scores)
        }
        name_map = {vertex: names[vertex.index] for vertex in score_map}
        return OutlierResult.from_scores(
            score_map,
            name_map,
            top_k=top_k,
            reference_count=len(reference_indices),
            measure=self._executor.measure.name,
        )

    def detect_many(
        self, queries: Sequence[str | Query], *, skip_failures: bool = False
    ) -> "BatchExecution":
        """Execute a query set; see :meth:`QueryExecutor.execute_many`.

        Returns a :class:`~repro.engine.executor.BatchExecution` — unpacks
        as ``(results, stats)`` and carries per-query ``errors`` keyed by
        query index.
        """
        return self._executor.execute_many(list(queries), skip_failures=skip_failures)

    def explain(self, query: str | Query) -> QueryPlan:
        """The execution plan for ``query`` under this detector's strategy."""
        return explain(self.strategy, query)

    def index_size_bytes(self) -> int:
        """Bytes held by this detector's index (0 for the baseline)."""
        return self.strategy.index_size_bytes()
