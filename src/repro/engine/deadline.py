"""Cooperative per-query deadlines (the time-budget half of resilience).

Kept in a leaf module — importing only the exception hierarchy — so the
strategy layer's hot loops can call :func:`check_deadline` without creating
a cycle with :mod:`repro.engine.resilience`, which builds on the strategy
layer.  User code should import these names from
:mod:`repro.engine.resilience`, which re-exports them.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.exceptions import DeadlineExceededError, ExecutionError

__all__ = ["Deadline", "deadline_scope", "current_deadline", "check_deadline"]


class Deadline:
    """A cooperative time budget for one query.

    The engine never preempts: loops that can run long call :meth:`check`
    (usually via the ambient :func:`check_deadline`) often enough that an
    expired budget surfaces within a small multiple of one loop iteration.

    Parameters
    ----------
    budget_seconds:
        Wall-clock budget; ``None`` means unlimited (checks never raise).
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        budget_seconds: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_seconds is not None and budget_seconds < 0:
            raise ExecutionError(
                f"deadline budget must be >= 0 seconds, got {budget_seconds}"
            )
        self.budget_seconds = budget_seconds
        self._clock = clock
        self._started = clock()

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def elapsed(self) -> float:
        """Seconds since this deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unlimited)."""
        if self.budget_seconds is None:
            return math.inf
        return self.budget_seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.budget_seconds is None:
            return
        elapsed = self.elapsed()
        if elapsed >= self.budget_seconds:
            suffix = f" during {context}" if context else ""
            raise DeadlineExceededError(
                f"query exceeded its {self.budget_seconds:.3g}s budget"
                f"{suffix} (elapsed {elapsed:.3g}s)",
                budget_seconds=self.budget_seconds,
                elapsed_seconds=elapsed,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.budget_seconds is None:
            return "Deadline(unlimited)"
        return f"Deadline({self.budget_seconds}s, remaining={self.remaining():.3g}s)"


_SCOPE = threading.local()


def _deadline_stack() -> list[Deadline]:
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = []
        _SCOPE.stack = stack
    return stack


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Make ``deadline`` the ambient deadline for the ``with`` block.

    Strategies deep inside materialization loops pick it up through
    :func:`check_deadline` without every signature threading a deadline
    parameter.  ``None`` installs nothing (checks stay no-ops).
    """
    if deadline is None:
        yield None
        return
    stack = _deadline_stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


def current_deadline() -> Deadline | None:
    """The innermost ambient deadline, or ``None`` outside any scope."""
    stack = getattr(_SCOPE, "stack", None)
    if not stack:
        return None
    return stack[-1]


def check_deadline(context: str = "") -> None:
    """Check the ambient deadline; a no-op outside any :func:`deadline_scope`."""
    stack = getattr(_SCOPE, "stack", None)
    if stack:
        stack[-1].check(context)
