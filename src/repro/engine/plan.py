"""Query plans: a human-readable explanation of how a query will execute.

``explain`` mirrors what the executor will do — set evaluation, feature
materialization (with the length-2 decomposition and per-segment index
availability), and scoring — without running anything.  Useful for
debugging SPM coverage and for teaching material in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.index import MetaPathIndex
from repro.engine.strategies import (
    BaselineStrategy,
    MaterializationStrategy,
    PMStrategy,
    SPMStrategy,
)
from repro.metapath.materialize import decompose_length2
from repro.metapath.metapath import MetaPath
from repro.query.ast import Query
from repro.query.formatter import format_set_expression
from repro.query.parser import parse_query
from repro.query.semantics import validate_query

__all__ = ["QueryPlan", "FeaturePlan", "explain"]


@dataclass(frozen=True)
class FeaturePlan:
    """Execution plan for one feature meta-path."""

    path: MetaPath
    weight: float
    segments: tuple[MetaPath, ...]
    tail: MetaPath | None
    #: Per-segment index coverage: "full", "partial", or "none".
    coverage: tuple[str, ...]
    #: Estimated non-zeros of one materialized φ row (cost proxy for the
    #: per-vertex materialization work); see :func:`estimate_row_nnz`.
    estimated_row_nnz: float = 0.0


@dataclass(frozen=True)
class QueryPlan:
    """The full plan: set expressions, features, strategy, and measure."""

    candidate_expression: str
    reference_expression: str | None
    member_type: str
    features: tuple[FeaturePlan, ...]
    strategy: str
    top_k: int

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            f"strategy        : {self.strategy}",
            f"candidate set   : {self.candidate_expression}",
            f"reference set   : {self.reference_expression or '(same as candidates)'}",
            f"member type     : {self.member_type}",
            f"top-k           : {self.top_k}",
        ]
        for feature in self.features:
            lines.append(
                f"feature         : {feature.path} (weight {feature.weight:g}, "
                f"~{feature.estimated_row_nnz:.0f} nnz/row)"
            )
            for segment, coverage in zip(feature.segments, feature.coverage):
                lines.append(f"  segment {segment}  [index: {coverage}]")
            if feature.tail is not None:
                lines.append(f"  tail    {feature.tail}  [single hop]")
        return "\n".join(lines)


def estimate_row_nnz(strategy: MaterializationStrategy, path: MetaPath) -> float:
    """Estimate the non-zeros of one materialized ``φ_path`` row.

    A cost proxy for per-vertex materialization work.  The estimate chains
    mean out-degrees: after hop ``i`` the expected frontier weight
    multiplies by the mean degree of the hop's edge type, capped at the
    target type's population (a row cannot have more non-zeros than
    columns).  Exact per-vertex counts vary with degree skew; this is the
    order-of-magnitude signal an EXPLAIN needs.
    """
    network = strategy.network
    expected = 1.0
    for left, right in zip(path.types, path.types[1:]):
        matrix = network.adjacency(left, right)
        rows = matrix.shape[0]
        mean_degree = (matrix.nnz / rows) if rows else 0.0
        expected *= mean_degree
        expected = min(expected, float(matrix.shape[1]))
    return expected


def _segment_coverage(strategy: MaterializationStrategy, segment: MetaPath) -> str:
    index: MetaPathIndex | None = getattr(strategy, "index", None)
    if isinstance(strategy, BaselineStrategy) or index is None:
        return "none"
    if index.full_matrix(segment) is not None:
        return "full"
    if isinstance(strategy, SPMStrategy) and segment in index.paths:
        return "partial"
    if isinstance(strategy, PMStrategy):
        return "none"
    return "none"


def explain(strategy: MaterializationStrategy, query: str | Query) -> QueryPlan:
    """Build the :class:`QueryPlan` for ``query`` under ``strategy``."""
    ast = parse_query(query) if isinstance(query, str) else query
    validated = validate_query(strategy.network.schema, ast)
    features: list[FeaturePlan] = []
    for feature in validated.features:
        segments, tail = decompose_length2(feature.path)
        coverage = tuple(_segment_coverage(strategy, segment) for segment in segments)
        features.append(
            FeaturePlan(
                path=feature.path,
                weight=feature.weight,
                segments=tuple(segments),
                tail=tail,
                coverage=coverage,
                estimated_row_nnz=estimate_row_nnz(strategy, feature.path),
            )
        )
    return QueryPlan(
        candidate_expression=format_set_expression(ast.candidates),
        reference_expression=(
            format_set_expression(ast.reference) if ast.reference is not None else None
        ),
        member_type=validated.member_type,
        features=tuple(features),
        strategy=strategy.name,
        top_k=ast.top_k,
    )
