"""Latency reporting for query workloads.

The paper reports totals and averages; production systems also watch tail
latency.  :class:`LatencyReport` summarizes a workload's per-query wall
times (mean, percentiles, max) and renders a one-line or tabular view, so
benchmarks and operators can compare strategies on the metric that matters
for the paper's "data analysts need to obtain results promptly" motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.results import OutlierResult
from repro.exceptions import ExecutionError

__all__ = ["LatencyReport"]

_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class LatencyReport:
    """Summary statistics over per-query wall times (seconds).

    Attributes
    ----------
    count:
        Number of queries.
    mean, p50, p90, p99, maximum:
        The usual suspects, in seconds.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_seconds(cls, seconds: Sequence[float]) -> "LatencyReport":
        """Build a report from raw per-query wall times."""
        values = np.asarray(list(seconds), dtype=float)
        if values.size == 0:
            raise ExecutionError("cannot summarize an empty latency sample")
        if (values < 0).any():
            raise ExecutionError("latencies must be non-negative")
        p50, p90, p99 = np.percentile(values, _PERCENTILES)
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            maximum=float(values.max()),
        )

    @classmethod
    def from_results(cls, results: Sequence[OutlierResult]) -> "LatencyReport":
        """Build a report from executed results carrying statistics.

        Raises
        ------
        ExecutionError
            If any result lacks stats (executor ran with
            ``collect_stats=False``) or the sequence is empty.
        """
        seconds = []
        for result in results:
            if result.stats is None:
                raise ExecutionError(
                    "results carry no ExecutionStats; run the executor with "
                    "collect_stats=True"
                )
            seconds.append(result.stats.wall_seconds)
        return cls.from_seconds(seconds)

    def describe(self) -> str:
        """One-line milliseconds rendering."""
        return (
            f"n={self.count}  mean={self.mean * 1e3:.2f}ms  "
            f"p50={self.p50 * 1e3:.2f}ms  p90={self.p90 * 1e3:.2f}ms  "
            f"p99={self.p99 * 1e3:.2f}ms  max={self.maximum * 1e3:.2f}ms"
        )
