"""Persistence for pre-materialized meta-path indexes.

PM/SPM indexes are built offline (paper §6.2) and reused across sessions;
this module saves a :class:`~repro.engine.index.MetaPathIndex` to a
directory and loads it back:

* ``manifest.json`` — which meta-paths are stored, and how;
* one ``.npz`` per fully materialized meta-path (scipy CSR format);
* per partially materialized meta-path, one ``.npz`` holding the stored
  rows stacked into a matrix plus a ``.rows.npy`` with their vertex indices.

Writes are **atomic at file granularity**: every file is written to a
temporary sibling and renamed into place, and the manifest is written last,
so a crash mid-save leaves either the previous complete index or data files
without a manifest — never a manifest pointing at half-written data.  Loads
are **corruption-safe**: truncated or garbled files surface as a typed
:class:`~repro.exceptions.ExecutionError`, not a raw pickle/JSON/zipfile
traceback.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path

import numpy as np
from scipy import sparse

from repro import faultinject
from repro.engine.index import MetaPathIndex
from repro.exceptions import ExecutionError
from repro.hin.storage import MmapArrayStore
from repro.metapath.metapath import MetaPath

__all__ = ["save_index", "load_index", "load_index_mmap"]

_MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1

#: Exception types that signal a truncated/garbled data file rather than a
#: programming error: ``zipfile.BadZipFile`` for corrupt npz containers
#: (it subclasses ``Exception`` directly, so it needs its own entry), short
#: reads as ``EOFError``/``OSError``, bad headers/payloads as
#: ``KeyError``/``ValueError`` from numpy's format layer.
_CORRUPTION_ERRORS = (ValueError, OSError, EOFError, KeyError, zipfile.BadZipFile)


def _file_stem(position: int) -> str:
    return f"metapath_{position:04d}"


def _atomic_replace(temp_path: Path, final_path: Path) -> None:
    """Promote a fully written temp file into place (atomic on POSIX)."""
    os.replace(temp_path, final_path)


def _save_npz_atomic(target: Path, matrix: sparse.spmatrix) -> None:
    temp = target.with_name(target.name + ".tmp")
    faultinject.check("io")
    try:
        # Writing through an open handle keeps save_npz from appending its
        # own .npz suffix to the temp name.
        with open(temp, "wb") as handle:
            sparse.save_npz(handle, matrix)
        _atomic_replace(temp, target)
    finally:
        if temp.exists():  # pragma: no cover - crash-path cleanup
            temp.unlink()


def _save_npy_atomic(target: Path, array: np.ndarray) -> None:
    temp = target.with_name(target.name + ".tmp")
    faultinject.check("io")
    try:
        with open(temp, "wb") as handle:
            np.save(handle, array)
        _atomic_replace(temp, target)
    finally:
        if temp.exists():  # pragma: no cover - crash-path cleanup
            temp.unlink()


def save_index(index: MetaPathIndex, directory: str | Path) -> None:
    """Write ``index`` into ``directory`` (created if needed).

    Data files are written first (each atomically), the manifest last, so
    an interrupted save never yields a manifest referencing missing or
    partial files.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"format_version": _FORMAT_VERSION, "full": [], "partial": []}

    position = 0
    for path in index.paths:
        stem = _file_stem(position)
        position += 1
        full = index.full_matrix(path)
        if full is not None:
            _save_npz_atomic(target / f"{stem}.npz", full)
            manifest["full"].append({"path": str(path), "file": f"{stem}.npz"})
            continue
        rows = index.partial_rows(path)
        vertex_indices = sorted(rows)
        stacked = sparse.vstack(
            [rows[i] for i in vertex_indices], format="csr"
        )
        _save_npz_atomic(target / f"{stem}.npz", stacked)
        _save_npy_atomic(
            target / f"{stem}.rows.npy",
            np.asarray(vertex_indices, dtype=np.int64),
        )
        manifest["partial"].append(
            {
                "path": str(path),
                "file": f"{stem}.npz",
                "rows_file": f"{stem}.rows.npy",
            }
        )

    manifest_temp = target / (_MANIFEST_NAME + ".tmp")
    faultinject.check("io")
    manifest_temp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    _atomic_replace(manifest_temp, target / _MANIFEST_NAME)


def _load_manifest(manifest_path: Path) -> dict:
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        raise ExecutionError(
            f"corrupt index manifest at {manifest_path}: {error}"
        ) from error
    if not isinstance(manifest, dict):
        raise ExecutionError(
            f"corrupt index manifest at {manifest_path}: expected an object, "
            f"got {type(manifest).__name__}"
        )
    return manifest


def _load_npz(data_path: Path) -> sparse.csr_matrix:
    faultinject.check("io")
    try:
        return sparse.load_npz(data_path)
    except _CORRUPTION_ERRORS as error:
        raise ExecutionError(
            f"corrupt or truncated index data file {data_path}: {error}"
        ) from error


def _load_rows(rows_path: Path) -> np.ndarray:
    faultinject.check("io")
    try:
        # allow_pickle stays False (numpy's default): row indices are plain
        # int64 arrays, and refusing pickles keeps corrupt/hostile files
        # from executing code at load time.
        return np.load(rows_path)
    except _CORRUPTION_ERRORS as error:
        raise ExecutionError(
            f"corrupt or truncated index rows file {rows_path}: {error}"
        ) from error


def load_index(directory: str | Path) -> MetaPathIndex:
    """Load an index previously written by :func:`save_index`.

    Raises
    ------
    ExecutionError
        On a missing or incompatible manifest, missing data files, or
        truncated/corrupt data files (no raw ``json``/``zipfile``/pickle
        tracebacks escape).
    """
    source = Path(directory)
    manifest_path = source / _MANIFEST_NAME
    if not manifest_path.exists():
        raise ExecutionError(f"no index manifest at {manifest_path}")
    manifest = _load_manifest(manifest_path)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ExecutionError(f"unsupported index format version: {version!r}")

    index = MetaPathIndex()
    try:
        full_entries = list(manifest.get("full", []))
        partial_entries = list(manifest.get("partial", []))
        for entry in full_entries + partial_entries:
            entry["path"]  # noqa: B018 - validate required keys up front
            entry["file"]
    except (TypeError, KeyError) as error:
        raise ExecutionError(
            f"corrupt index manifest at {manifest_path}: {error!r}"
        ) from error

    for entry in full_entries:
        data_path = source / entry["file"]
        if not data_path.exists():
            raise ExecutionError(f"index data file missing: {data_path}")
        index.store_full(MetaPath.parse(entry["path"]), _load_npz(data_path))
    for entry in partial_entries:
        data_path = source / entry["file"]
        rows_path = source / entry.get("rows_file", "")
        if not data_path.exists() or not rows_path.exists():
            raise ExecutionError(
                f"index data files missing for {entry['path']!r}"
            )
        stacked = _load_npz(data_path).tocsr()
        vertex_indices = _load_rows(rows_path)
        if stacked.shape[0] != len(vertex_indices):
            raise ExecutionError(
                f"corrupt partial index for {entry['path']!r}: "
                f"{stacked.shape[0]} rows vs {len(vertex_indices)} indices"
            )
        path = MetaPath.parse(entry["path"])
        for row_position, vertex_index in enumerate(vertex_indices):
            index.store_row(path, int(vertex_index), stacked.getrow(row_position))
    return index


def load_index_mmap(directory: str | Path) -> MetaPathIndex:
    """Attach an index published by an out-of-core (blocked) build, zero-copy.

    The blocked builders (:func:`repro.engine.index.build_pm_index_blocked`
    and :func:`~repro.engine.index.build_spm_index_blocked`) spill CSR
    buffers into a :class:`repro.hin.storage.MmapArrayStore` and commit its
    manifest **last** — the same write-data-then-manifest discipline as
    :func:`save_index`.  This loader therefore sees either a complete
    published index or nothing: a directory holding only the data files of
    an interrupted build raises a typed error, never a partial index.

    The returned index reads the on-disk files directly through read-only
    ``np.memmap`` views (no load-time copy).

    Raises
    ------
    ExecutionError
        When no committed manifest exists, or the manifest/data are
        inconsistent.
    """
    store = MmapArrayStore.open(directory)
    manifest = store.extra.get("index")
    if not isinstance(manifest, dict) or "entries" not in manifest:
        raise ExecutionError(
            f"array store at {directory} holds no published index manifest"
        )
    try:
        return MetaPathIndex.from_arrays(manifest, store.arrays())
    except (KeyError, TypeError, ValueError) as error:
        raise ExecutionError(
            f"corrupt out-of-core index at {directory}: {error!r}"
        ) from error
