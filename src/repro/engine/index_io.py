"""Persistence for pre-materialized meta-path indexes.

PM/SPM indexes are built offline (paper §6.2) and reused across sessions;
this module saves a :class:`~repro.engine.index.MetaPathIndex` to a
directory and loads it back:

* ``manifest.json`` — which meta-paths are stored, and how;
* one ``.npz`` per fully materialized meta-path (scipy CSR format);
* per partially materialized meta-path, one ``.npz`` holding the stored
  rows stacked into a matrix plus a ``.rows.npy`` with their vertex indices.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.engine.index import MetaPathIndex
from repro.exceptions import ExecutionError
from repro.metapath.metapath import MetaPath

__all__ = ["save_index", "load_index"]

_MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1


def _file_stem(position: int) -> str:
    return f"metapath_{position:04d}"


def save_index(index: MetaPathIndex, directory: str | Path) -> None:
    """Write ``index`` into ``directory`` (created if needed)."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: dict = {"format_version": _FORMAT_VERSION, "full": [], "partial": []}

    position = 0
    for path in index.paths:
        stem = _file_stem(position)
        position += 1
        full = index.full_matrix(path)
        if full is not None:
            sparse.save_npz(target / f"{stem}.npz", full)
            manifest["full"].append({"path": str(path), "file": f"{stem}.npz"})
            continue
        rows = index.partial_rows(path)
        vertex_indices = sorted(rows)
        stacked = sparse.vstack(
            [rows[i] for i in vertex_indices], format="csr"
        )
        sparse.save_npz(target / f"{stem}.npz", stacked)
        np.save(target / f"{stem}.rows.npy", np.asarray(vertex_indices, dtype=np.int64))
        manifest["partial"].append(
            {
                "path": str(path),
                "file": f"{stem}.npz",
                "rows_file": f"{stem}.rows.npy",
            }
        )

    with open(target / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def load_index(directory: str | Path) -> MetaPathIndex:
    """Load an index previously written by :func:`save_index`.

    Raises
    ------
    ExecutionError
        On a missing or incompatible manifest, or missing data files.
    """
    source = Path(directory)
    manifest_path = source / _MANIFEST_NAME
    if not manifest_path.exists():
        raise ExecutionError(f"no index manifest at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise ExecutionError(f"unsupported index format version: {version!r}")

    index = MetaPathIndex()
    for entry in manifest.get("full", []):
        data_path = source / entry["file"]
        if not data_path.exists():
            raise ExecutionError(f"index data file missing: {data_path}")
        index.store_full(MetaPath.parse(entry["path"]), sparse.load_npz(data_path))
    for entry in manifest.get("partial", []):
        data_path = source / entry["file"]
        rows_path = source / entry["rows_file"]
        if not data_path.exists() or not rows_path.exists():
            raise ExecutionError(
                f"index data files missing for {entry['path']!r}"
            )
        stacked = sparse.load_npz(data_path).tocsr()
        vertex_indices = np.load(rows_path)
        if stacked.shape[0] != len(vertex_indices):
            raise ExecutionError(
                f"corrupt partial index for {entry['path']!r}: "
                f"{stacked.shape[0]} rows vs {len(vertex_indices)} indices"
            )
        path = MetaPath.parse(entry["path"])
        for row_position, vertex_index in enumerate(vertex_indices):
            index.store_row(path, int(vertex_index), stacked.getrow(row_position))
    return index
