"""SPM workload analysis: choosing which vertices to pre-materialize.

Section 6.2's selective pre-materialization counts "the frequency with
which different vertices appear in queries" over an *initialization query
set* (query logs, or synthetic queries standing in for them) and indexes
length-2 rows only for vertices whose relative frequency clears a threshold
(0.01 in the paper's experiments).

:class:`WorkloadAnalyzer` evaluates the candidate-set expression of each
initialization query against the network, tallies how often each vertex
appears across candidate sets, and returns the vertices above threshold.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.engine.index import MetaPathIndex, build_spm_index
from repro.engine.strategies import BaselineStrategy
from repro.engine.evaluator import SetEvaluator
from repro.exceptions import VertexNotFoundError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.query.ast import Query
from repro.query.parser import parse_query

__all__ = ["WorkloadAnalyzer", "select_frequent_vertices"]


class WorkloadAnalyzer:
    """Tallies vertex frequencies over an initialization query set.

    Frequencies are *relative*: the fraction of analyzed queries whose
    candidate set contains the vertex.  Anchor vertices themselves are also
    counted (they appear in query processing even when not members).

    Parameters
    ----------
    network:
        The network queries run against.
    """

    def __init__(self, network: HeterogeneousInformationNetwork) -> None:
        self.network = network
        self._occurrences: Counter[VertexId] = Counter()
        self._analyzed = 0
        # Analysis itself runs unindexed (there is no index yet to use).
        self._evaluator = SetEvaluator(BaselineStrategy(network))

    @property
    def analyzed_queries(self) -> int:
        return self._analyzed

    def analyze(self, query: str | Query) -> None:
        """Fold one query's candidate-set membership into the tallies.

        Queries whose anchors do not exist in the network are counted as
        analyzed but contribute no members (matching how a dead query log
        entry would behave).
        """
        ast = parse_query(query) if isinstance(query, str) else query
        self._analyzed += 1
        try:
            member_type, members = self._evaluator.evaluate(ast.candidates)
        except VertexNotFoundError:
            return
        for member in members:
            self._occurrences[VertexId(member_type, member)] += 1

    def analyze_many(self, queries: Iterable[str | Query]) -> None:
        for query in queries:
            self.analyze(query)

    def relative_frequencies(self) -> dict[VertexId, float]:
        """Vertex → fraction of analyzed queries containing it."""
        if self._analyzed == 0:
            return {}
        return {
            vertex: count / self._analyzed
            for vertex, count in self._occurrences.items()
        }

    def frequent_vertices(self, threshold: float) -> list[VertexId]:
        """Vertices with relative frequency ≥ ``threshold``, sorted."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        frequencies = self.relative_frequencies()
        return sorted(v for v, f in frequencies.items() if f >= threshold)

    def build_index(self, threshold: float) -> MetaPathIndex:
        """Build the SPM index for the vertices above ``threshold``."""
        return build_spm_index(self.network, self.frequent_vertices(threshold))


def select_frequent_vertices(
    network: HeterogeneousInformationNetwork,
    queries: Sequence[str | Query],
    threshold: float,
) -> list[VertexId]:
    """One-shot convenience: analyze ``queries`` and select frequent vertices."""
    analyzer = WorkloadAnalyzer(network)
    analyzer.analyze_many(queries)
    return analyzer.frequent_vertices(threshold)
