"""Query suggestion: help users find more interesting outlier queries.

Section 8 of the paper: *"The system might even be able to suggest how the
users can modify their queries to get more interesting, or more unusual,
outliers."*

:class:`QueryAdvisor` implements the feature-meta-path variant of that
idea.  Given a query, it enumerates the alternative feature meta-paths the
schema allows from the candidate member type, executes each variant, and
ranks them by an *interestingness* score of the resulting Ω distribution:
a query is interesting when its top outliers separate sharply from the
bulk of the candidate set (and uninteresting when every candidate scores
about the same, or when scores are degenerate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.results import OutlierResult
from repro.engine.executor import QueryExecutor
from repro.engine.strategies import MaterializationStrategy
from repro.exceptions import ExecutionError
from repro.metapath.metapath import MetaPath
from repro.query.ast import FeaturePath, Query
from repro.query.formatter import format_query
from repro.query.parser import parse_query
from repro.query.semantics import validate_query

__all__ = ["Suggestion", "QueryAdvisor", "interestingness"]


def interestingness(scores: np.ndarray, top_k: int) -> float:
    """Separation of the top-k outliers from the bulk, in [0, 1].

    Defined as ``(median - mean(top-k)) / median`` over the ascending score
    vector (lower Ω = more outlying), clipped to [0, 1]:

    * 0 — the provisional outliers score like the typical candidate
      (nothing stands out, or the distribution is degenerate);
    * → 1 — the top-k sit far below the bulk of the candidate set.
    """
    values = np.sort(np.asarray(scores, dtype=float))
    if len(values) <= top_k:
        return 0.0
    median = float(np.median(values))
    if median <= 0:
        return 0.0
    top_mean = float(values[:top_k].mean())
    return float(np.clip((median - top_mean) / median, 0.0, 1.0))


@dataclass(frozen=True)
class Suggestion:
    """One suggested query variant.

    Attributes
    ----------
    feature_path:
        The alternative feature meta-path.
    query_text:
        The full rewritten query in canonical form.
    score:
        Interestingness of the variant's Ω distribution (higher = better).
    result:
        The executed result of the variant (top-k et al.).
    """

    feature_path: MetaPath
    query_text: str
    score: float
    result: OutlierResult

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.score:.3f}] JUDGED BY {self.feature_path}"


class QueryAdvisor:
    """Suggests alternative feature meta-paths for an outlier query.

    Parameters
    ----------
    strategy:
        Materialization strategy used to execute candidate variants
        (a PM strategy makes exploration fast).
    measure:
        Measure name or instance used for the variants.
    """

    def __init__(
        self,
        strategy: MaterializationStrategy,
        measure: str = "netout",
    ) -> None:
        self.strategy = strategy
        self.network = strategy.network
        self._executor = QueryExecutor(strategy, measure, collect_stats=False)

    # ------------------------------------------------------------------
    # Meta-path enumeration
    # ------------------------------------------------------------------
    def enumerate_feature_paths(
        self,
        member_type: str,
        *,
        max_length: int = 3,
        limit: int = 32,
    ) -> list[MetaPath]:
        """All schema-legal meta-paths from ``member_type``, by length.

        Paths are enumerated breadth-first up to ``max_length`` hops and
        capped at ``limit`` (schemas with many edge types explode
        combinatorially).  Trivial one-hop paths are included — they are
        legal ``JUDGED BY`` clauses.
        """
        if max_length < 1:
            raise ExecutionError(f"max_length must be >= 1, got {max_length}")
        schema = self.network.schema
        frontier: list[tuple[str, ...]] = [(member_type,)]
        discovered: list[MetaPath] = []
        for __ in range(max_length):
            next_frontier: list[tuple[str, ...]] = []
            for prefix in frontier:
                for neighbor in sorted(schema.neighbor_types(prefix[-1])):
                    extended = prefix + (neighbor,)
                    discovered.append(MetaPath(extended))
                    next_frontier.append(extended)
                    if len(discovered) >= limit:
                        return discovered
            frontier = next_frontier
        return discovered

    # ------------------------------------------------------------------
    # Suggestion
    # ------------------------------------------------------------------
    def suggest(
        self,
        query: str | Query,
        *,
        max_length: int = 3,
        max_suggestions: int = 5,
        include_current: bool = False,
    ) -> list[Suggestion]:
        """Rank alternative single-feature variants of ``query``.

        Each schema-legal feature meta-path from the candidate member type
        (except those already in the query, unless ``include_current``)
        replaces the JUDGED BY clause; the variant runs, and variants are
        ranked by :func:`interestingness` descending.  Variants whose
        candidate scores are all zero (no connectivity at all along that
        path) are dropped.
        """
        ast = parse_query(query) if isinstance(query, str) else query
        validated = validate_query(self.network.schema, ast)
        current = {feature.path.types for feature in validated.features}

        suggestions: list[Suggestion] = []
        for path in self.enumerate_feature_paths(
            validated.member_type, max_length=max_length
        ):
            if not include_current and path.types in current:
                continue
            variant = replace(ast, features=(FeaturePath(path.types),))
            try:
                result = self._executor.execute(variant)
            except ExecutionError:
                continue
            scores = np.fromiter(result.scores.values(), dtype=float)
            if not scores.any():
                continue
            suggestions.append(
                Suggestion(
                    feature_path=path,
                    query_text=format_query(variant),
                    score=interestingness(scores, ast.top_k),
                    result=result,
                )
            )
        suggestions.sort(key=lambda s: (-s.score, str(s.feature_path)))
        return suggestions[:max_suggestions]
