"""Cross-query neighbor-vector caching.

Real workloads (the paper's Table 4 query sets included) touch the same hub
vertices over and over: every coauthor query against a community re-reads
the same prolific authors' vectors.  :class:`CachingStrategy` wraps any
materialization strategy with a bounded LRU cache of ``(meta-path, vertex)``
rows, turning that repetition into hits.

This composes with the paper's indexes rather than replacing them: a cached
Baseline avoids repeated traversals, a cached SPM avoids repeated traversal
*misses*, and a cached PM mostly measures lookup overhead.  The
``ablation_row_cache`` benchmark quantifies each pairing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from scipy import sparse

from repro import faultinject
from repro.engine.strategies import MaterializationStrategy
from repro.exceptions import ExecutionError, TransientFaultError
from repro.metapath.metapath import MetaPath
from repro.utils.sparsetools import sparse_row_bytes

__all__ = ["CachingStrategy"]


class CachingStrategy(MaterializationStrategy):
    """LRU row cache in front of another strategy.

    Parameters
    ----------
    inner:
        The strategy that actually materializes vectors on a miss.
    max_rows:
        Cache capacity in rows; least-recently-used rows evict first.

    Notes
    -----
    The cache delegates statistics to the inner strategy only on misses, so
    per-phase accounting stays truthful: a hit costs (and records) nothing.

    The cache is thread-safe: an ``RLock`` guards every read and write of
    the LRU ``OrderedDict`` and its counters, so one instance can sit in
    front of a shared index inside :class:`~repro.service.QueryService`'s
    worker pool.  Misses materialize *outside* the lock — concurrent misses
    never serialize on each other, at worst both compute the same row and
    the second insert wins.
    """

    def __init__(self, inner: MaterializationStrategy, *, max_rows: int = 4096) -> None:
        super().__init__(inner.network)
        if max_rows < 1:
            raise ExecutionError(f"max_rows must be >= 1, got {max_rows}")
        self.inner = inner
        self.max_rows = max_rows
        self.name = f"cached-{inner.name}"
        self._rows: OrderedDict[tuple[MetaPath, int], sparse.csr_matrix] = OrderedDict()
        self._lock = threading.RLock()
        self._cached_version = inner.network.version
        self.hits = 0
        self.misses = 0
        #: Cache reads dropped due to (injected or real) transient faults.
        self.faulted_reads = 0

    # ------------------------------------------------------------------
    # MaterializationStrategy interface
    # ------------------------------------------------------------------
    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        key = (path, vertex_index)
        with self._lock:
            # Mutations invalidate every cached row: serving pre-mutation
            # vectors silently would desynchronize results from the live data.
            if self.network.version != self._cached_version:
                self._rows.clear()
                self._cached_version = self.network.version
            cached = self._rows.get(key)
            if cached is not None:
                try:
                    faultinject.check("cache_read")
                except TransientFaultError:
                    # A failed cache read is self-healing: drop the suspect
                    # row and recompute from the inner strategy (a miss, not
                    # an error) — a cache must never make a query fail.
                    self._rows.pop(key, None)
                    self.faulted_reads += 1
                else:
                    self._rows.move_to_end(key)
                    self.hits += 1
                    return cached
        # Materialize outside the lock so concurrent misses don't serialize;
        # two threads may compute the same row, the second insert wins.
        row = self.inner.neighbor_row(path, vertex_index, stats)
        with self._lock:
            self.misses += 1
            self._rows[key] = row
            if len(self._rows) > self.max_rows:
                self._rows.popitem(last=False)
        return row

    def index_size_bytes(self) -> int:
        """Inner index bytes plus the cache's current row storage."""
        with self._lock:
            cache_bytes = sum(
                sparse_row_bytes(int(row.nnz)) for row in self._rows.values()
            )
        return self.inner.index_size_bytes() + cache_bytes

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    @property
    def cached_rows(self) -> int:
        with self._lock:
            return len(self._rows)

    @property
    def hit_rate(self) -> float:
        """Fraction of row requests served from the cache (0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all cached rows and reset hit/miss counters."""
        with self._lock:
            self._rows.clear()
            self.hits = 0
            self.misses = 0
            self.faulted_reads = 0
