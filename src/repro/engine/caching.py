"""Cross-query caching: neighbor-vector rows and shared sub-path products.

Real workloads (the paper's Table 4 query sets included) touch the same hub
vertices over and over: every coauthor query against a community re-reads
the same prolific authors' vectors.  :class:`CachingStrategy` wraps any
materialization strategy with a bounded LRU cache of ``(meta-path, vertex)``
rows, turning that repetition into hits.

This composes with the paper's indexes rather than replacing them: a cached
Baseline avoids repeated traversals, a cached SPM avoids repeated traversal
*misses*, and a cached PM mostly measures lookup overhead.  The
``ablation_row_cache`` benchmark quantifies each pairing.

:class:`SubpathCache` caches one level lower, following Atrapos' observation
that concurrent meta-path workloads are dominated by *overlapping
sub-paths*: a byte-bounded LRU of full length-2 segment count matrices
(``A₁ @ A₂``), keyed by ``(segment, network version)``.  The blocked
materialization paths of the Baseline and SPM strategies consult it, so two
concurrent queries whose meta-paths share a segment — ``a.p.v`` inside both
``a.p.v`` and ``a.p.v.p.a`` — compute the segment product once.  Because
path counts are non-negative integers far below 2⁵³, float64 sparse
products are exact and associative: multiplying a selection block by a
cached segment matrix is byte-identical to chaining the two hops.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np
from scipy import sparse

from repro import faultinject
from repro.engine.strategies import MaterializationStrategy, _stitch_rows
from repro.exceptions import ExecutionError, TransientFaultError
from repro.metapath.metapath import MetaPath
from repro.utils.sparsetools import csr_storage_bytes, sparse_row_bytes

__all__ = ["CachingStrategy", "SubpathCache"]


def _split_rows(block: sparse.csr_matrix) -> list[sparse.csr_matrix]:
    """Slice a CSR block into independent 1 x n rows via raw indptr views.

    Each row copies its own data/indices slices so cached rows never pin
    the whole source block in memory.  This is cache *bookkeeping* (cheap
    array slicing), not materialization — the expensive work already
    happened in one bulk block computation.
    """
    width = block.shape[1]
    indptr, indices, data = block.indptr, block.indices, block.data
    rows = []
    for position in range(block.shape[0]):
        start, stop = int(indptr[position]), int(indptr[position + 1])
        rows.append(
            sparse.csr_matrix(
                (
                    data[start:stop].copy(),
                    indices[start:stop].copy(),
                    np.array([0, stop - start], dtype=np.int64),
                ),
                shape=(1, width),
            )
        )
    return rows


class SubpathCache:
    """Byte-bounded LRU of full length-2 segment products, shared by queries.

    Parameters
    ----------
    max_bytes:
        Total CSR storage budget (under the repo's conventional accounting
        model); least-recently-used segments evict first.  An entry larger
        than the whole budget is rejected outright (counted, never stored).

    Notes
    -----
    Keys are ``(segment, network version)``: :meth:`get`/:meth:`put` carry
    the caller's version, and any entry stored at a different version is
    dropped wholesale — the same invalidation contract the result cache
    and row cache follow, which is what makes the adaptive hot-swap (a
    version bump with unchanged graph data) safe here too.

    Thread-safe (one ``RLock`` guards the LRU and its counters); in the
    process backend every worker holds its own instance over the same
    read-only shared adjacency, which is correct because entries are pure
    functions of (segment, version).

    Fault points: ``subpath.get`` and ``subpath.put`` are **self-healing**
    like ``cache_read`` — a faulted read drops the suspect entry and
    reports a miss, a faulted write skips the insert.  A cache must never
    make a query fail, so the Baseline rung stays the degradation ladder's
    infallible floor even with this cache attached.
    """

    def __init__(self, *, max_bytes: int) -> None:
        if max_bytes < 1:
            raise ExecutionError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        self._entries: OrderedDict[MetaPath, tuple[int, sparse.csr_matrix]] = (
            OrderedDict()
        )
        self._bytes = 0
        self._version: int | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries refused because one segment product exceeds the budget.
        self.rejected = 0
        #: Reads dropped / writes skipped by (injected or real) faults.
        self.faulted_gets = 0
        self.faulted_puts = 0

    def _sync_version_locked(self, version: int) -> None:
        if self._version != version:
            self._entries.clear()
            self._bytes = 0
            self._version = version

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, segment: MetaPath, version: int) -> sparse.csr_matrix | None:
        """The cached product of ``segment`` at ``version``, or ``None``."""
        with self._lock:
            self._sync_version_locked(version)
            entry = self._entries.get(segment)
            if entry is not None:
                try:
                    faultinject.check("subpath.get")
                except TransientFaultError:
                    # Self-healing: drop the suspect entry and recompute —
                    # a miss, never an error.
                    self._entries.pop(segment, None)
                    self._bytes -= entry[0]
                    self.faulted_gets += 1
                else:
                    self._entries.move_to_end(segment)
                    self.hits += 1
                    return entry[1]
            self.misses += 1
            return None

    def put(
        self, segment: MetaPath, version: int, matrix: sparse.csr_matrix
    ) -> None:
        """Insert the product of ``segment`` computed at ``version``."""
        size = csr_storage_bytes(matrix)
        with self._lock:
            self._sync_version_locked(version)
            try:
                faultinject.check("subpath.put")
            except TransientFaultError:
                self.faulted_puts += 1
                return
            if size > self.max_bytes:
                self.rejected += 1
                return
            old = self._entries.pop(segment, None)
            if old is not None:
                self._bytes -= old[0]
            self._entries[segment] = (size, matrix)
            self._bytes += size
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, (evicted_bytes, _evicted) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self.evictions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Internally consistent stats snapshot under one lock hold."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "faulted_gets": self.faulted_gets,
                "faulted_puts": self.faulted_puts,
            }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.rejected = 0
            self.faulted_gets = 0
            self.faulted_puts = 0


class CachingStrategy(MaterializationStrategy):
    """LRU row cache in front of another strategy.

    Parameters
    ----------
    inner:
        The strategy that actually materializes vectors on a miss.
    max_rows:
        Cache capacity in rows; least-recently-used rows evict first.

    Notes
    -----
    The cache delegates statistics to the inner strategy only on misses, so
    per-phase accounting stays truthful: a hit costs (and records) nothing.

    The cache is thread-safe: an ``RLock`` guards every read and write of
    the LRU ``OrderedDict`` and its counters, so one instance can sit in
    front of a shared index inside :class:`~repro.service.QueryService`'s
    worker pool.  Misses materialize *outside* the lock — concurrent misses
    never serialize on each other, at worst both compute the same row and
    the second insert wins.

    Bulk requests (``neighbor_matrix``) use a batch protocol per block:
    one lock acquisition gathers every cached row, all misses compute in a
    single bulk call to the inner strategy, and one more lock acquisition
    inserts the new rows — so a warm service worker never loops per vertex.
    """

    def __init__(self, inner: MaterializationStrategy, *, max_rows: int = 4096) -> None:
        super().__init__(inner.network)
        if max_rows < 1:
            raise ExecutionError(f"max_rows must be >= 1, got {max_rows}")
        self.inner = inner
        self.max_rows = max_rows
        self.name = f"cached-{inner.name}"
        self._rows: OrderedDict[tuple[MetaPath, int], sparse.csr_matrix] = OrderedDict()
        self._lock = threading.RLock()
        self._cached_version = inner.network.version
        self.hits = 0
        self.misses = 0
        #: Cache reads dropped due to (injected or real) transient faults.
        self.faulted_reads = 0

    # ------------------------------------------------------------------
    # MaterializationStrategy interface
    # ------------------------------------------------------------------
    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        key = (path, vertex_index)
        with self._lock:
            # Mutations invalidate every cached row: serving pre-mutation
            # vectors silently would desynchronize results from the live data.
            if self.network.version != self._cached_version:
                self._rows.clear()
                self._cached_version = self.network.version
            cached = self._rows.get(key)
            if cached is not None:
                try:
                    faultinject.check("cache_read")
                except TransientFaultError:
                    # A failed cache read is self-healing: drop the suspect
                    # row and recompute from the inner strategy (a miss, not
                    # an error) — a cache must never make a query fail.
                    self._rows.pop(key, None)
                    self.faulted_reads += 1
                else:
                    self._rows.move_to_end(key)
                    self.hits += 1
                    return cached
        # Materialize outside the lock so concurrent misses don't serialize;
        # two threads may compute the same row, the second insert wins.
        row = self.inner.neighbor_row(path, vertex_index, stats)
        with self._lock:
            self.misses += 1
            self._rows[key] = row
            if len(self._rows) > self.max_rows:
                self._rows.popitem(last=False)
        return row

    def _materialize_block(self, path, vertex_indices, stats) -> sparse.csr_matrix:
        """Batch interface: gather hits, compute all misses in one block.

        One lock acquisition partitions the block into cached rows and
        misses (and runs a single per-block ``cache_read`` fault check);
        the misses materialize **outside** the lock with one bulk
        ``inner.neighbor_matrix`` call; a second single lock acquisition
        inserts every new row.  Hits cost (and record) nothing, exactly
        like the row-at-a-time path.
        """
        hit_positions: list[int] = []
        hit_rows: list[sparse.csr_matrix] = []
        miss_positions: list[int] = []
        miss_indices: list[int] = []
        with self._lock:
            if self.network.version != self._cached_version:
                self._rows.clear()
                self._cached_version = self.network.version
            cached = [self._rows.get((path, int(i))) for i in vertex_indices]
            if any(row is not None for row in cached):
                try:
                    # One fault check per block (not per row): a transient
                    # cache fault drops the whole block's hits and recomputes
                    # them as misses — self-healing, never an error.
                    faultinject.check("cache_read")
                except TransientFaultError:
                    for position, row in enumerate(cached):
                        if row is not None:
                            self._rows.pop((path, int(vertex_indices[position])), None)
                            self.faulted_reads += 1
                    cached = [None] * len(cached)
            for position, row in enumerate(cached):
                if row is None:
                    miss_positions.append(position)
                    miss_indices.append(int(vertex_indices[position]))
                else:
                    self._rows.move_to_end((path, int(vertex_indices[position])))
                    self.hits += 1
                    hit_positions.append(position)
                    hit_rows.append(row)
        parts: list[tuple[np.ndarray, sparse.csr_matrix]] = []
        if hit_rows:
            hit_block = (
                hit_rows[0]
                if len(hit_rows) == 1
                else sparse.vstack(hit_rows, format="csr")
            )
            parts.append((np.asarray(hit_positions, dtype=np.int64), hit_block))
        if miss_indices:
            # Bulk miss computation outside the lock: concurrent blocks
            # never serialize on each other; duplicated work is bounded by
            # one block and the last insert wins.
            miss_block = self.inner.neighbor_matrix(path, miss_indices, stats)
            with self._lock:
                self.misses += len(miss_indices)
                for vertex, row in zip(miss_indices, _split_rows(miss_block)):
                    self._rows[(path, vertex)] = row
                while len(self._rows) > self.max_rows:
                    self._rows.popitem(last=False)
            parts.append((np.asarray(miss_positions, dtype=np.int64), miss_block))
        return _stitch_rows(parts, len(vertex_indices))

    def index_size_bytes(self) -> int:
        """Inner index bytes plus the cache's current row storage."""
        with self._lock:
            cache_bytes = sum(
                sparse_row_bytes(int(row.nnz)) for row in self._rows.values()
            )
        return self.inner.index_size_bytes() + cache_bytes

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    @property
    def cached_rows(self) -> int:
        with self._lock:
            return len(self._rows)

    @property
    def hit_rate(self) -> float:
        """Fraction of row requests served from the cache (0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Internally consistent stats snapshot under **one** lock hold.

        ``/stats`` readers must not assemble their view from separate
        ``hit_rate`` / ``cached_rows`` property reads — each takes the lock
        independently, so a concurrent insert between them yields a row
        count and hit rate from different moments.
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "rows": len(self._rows),
                "max_rows": self.max_rows,
                "hits": self.hits,
                "misses": self.misses,
                "faulted_reads": self.faulted_reads,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def clear(self) -> None:
        """Drop all cached rows and reset hit/miss counters."""
        with self._lock:
            self._rows.clear()
            self.hits = 0
            self.misses = 0
            self.faulted_reads = 0
