"""Query execution engine (paper Section 6).

Pipeline: parse → validate → evaluate candidate/reference set expressions →
materialize neighbor vectors for each feature meta-path → score with the
selected measure → rank.

Three interchangeable materialization strategies implement the paper's
efficiency comparison:

* :class:`~repro.engine.strategies.BaselineStrategy` — per-vertex frontier
  traversal, no index (§6.1).
* :class:`~repro.engine.strategies.PMStrategy` — all length-2 meta-path
  matrices pre-materialized (§6.2, "Pre-materialization").
* :class:`~repro.engine.strategies.SPMStrategy` — length-2 rows stored only
  for vertices frequent in an initialization query workload (§6.2,
  "Selective pre-materialization").

:class:`~repro.engine.detector.OutlierDetector` is the user-facing facade.
"""

from repro.engine.stats import (
    PHASE_INDEXED,
    PHASE_NOT_INDEXED,
    PHASE_SCORING,
    ExecutionStats,
)
from repro.engine.index import MetaPathIndex, build_pm_index, build_spm_index
from repro.engine.strategies import (
    BaselineStrategy,
    MaterializationStrategy,
    PMStrategy,
    SPMStrategy,
    make_strategy,
)
from repro.engine.evaluator import SetEvaluator
from repro.engine.executor import BatchExecution, QueryExecutor
from repro.engine.resilience import (
    CircuitBreaker,
    Deadline,
    DEGRADATION_LADDER,
    FallbackStrategy,
    ResiliencePolicy,
    ResourceGuard,
    check_deadline,
    current_deadline,
    deadline_scope,
    estimate_pm_index_bytes,
    estimate_spm_index_bytes,
    retry_with_backoff,
)
from repro.engine.optimizer import WorkloadAnalyzer, select_frequent_vertices
from repro.engine.plan import QueryPlan, explain
from repro.engine.advisor import QueryAdvisor, Suggestion, interestingness
from repro.engine.caching import CachingStrategy
from repro.engine.index_io import load_index, save_index
from repro.engine.latency import LatencyReport
from repro.engine.progressive import ProgressiveQueryExecutor, ProgressiveSnapshot
from repro.engine.detector import OutlierDetector

__all__ = [
    "ExecutionStats",
    "PHASE_NOT_INDEXED",
    "PHASE_INDEXED",
    "PHASE_SCORING",
    "MetaPathIndex",
    "build_pm_index",
    "build_spm_index",
    "MaterializationStrategy",
    "BaselineStrategy",
    "PMStrategy",
    "SPMStrategy",
    "make_strategy",
    "SetEvaluator",
    "QueryExecutor",
    "BatchExecution",
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
    "retry_with_backoff",
    "CircuitBreaker",
    "ResourceGuard",
    "ResiliencePolicy",
    "FallbackStrategy",
    "DEGRADATION_LADDER",
    "estimate_pm_index_bytes",
    "estimate_spm_index_bytes",
    "WorkloadAnalyzer",
    "select_frequent_vertices",
    "QueryPlan",
    "explain",
    "QueryAdvisor",
    "Suggestion",
    "interestingness",
    "CachingStrategy",
    "save_index",
    "load_index",
    "LatencyReport",
    "ProgressiveQueryExecutor",
    "ProgressiveSnapshot",
    "OutlierDetector",
]
