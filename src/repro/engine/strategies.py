"""Meta-path materialization strategies (paper Sections 6.1-6.2).

A strategy answers one question: *given a meta-path ``P`` and a start
vertex, produce the neighbor vector ``φ_P``* — and accounts the time spent
under the paper's phase taxonomy (not-indexed traversal vs indexed lookup).

* :class:`BaselineStrategy` materializes every vector by frontier traversal
  over the adjacency structure (dictionary accumulation, one hop at a
  time).  This models the paper's unindexed executor: per-vertex graph
  traversal whose cost grows with path length and vertex degree.
* :class:`PMStrategy` holds a full length-2 index: the first two hops are a
  row lookup, and remaining length-2 segments are row x cached-matrix
  products (the "multiplication of indexed vectors" of §6.2).
* :class:`SPMStrategy` holds a partial index: rows exist only for selected
  vertices.  Hits are lookups; misses fall back to two-hop traversal —
  producing exactly the phase mix Figure 4 analyzes.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from scipy import sparse

from repro import faultinject
from repro.engine.deadline import check_deadline
from repro.engine.index import MetaPathIndex, build_pm_index, build_spm_index
from repro.engine.stats import PHASE_INDEXED, PHASE_NOT_INDEXED, ExecutionStats
from repro.exceptions import ExecutionError, MetaPathError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.counting import neighbor_counts
from repro.metapath.materialize import decompose_length2
from repro.metapath.metapath import MetaPath

__all__ = [
    "MaterializationStrategy",
    "BaselineStrategy",
    "PMStrategy",
    "SPMStrategy",
    "make_strategy",
]


def _counts_to_row(counts: dict[int, float], width: int) -> sparse.csr_matrix:
    """Pack a sparse ``{index: count}`` map into a 1 x width CSR row."""
    if not counts:
        return sparse.csr_matrix((1, width), dtype=float)
    indices = sorted(counts)
    data = [counts[i] for i in indices]
    return sparse.csr_matrix(
        (data, ([0] * len(indices), indices)), shape=(1, width), dtype=float
    )


def _identity_row(width: int, index: int) -> sparse.csr_matrix:
    return sparse.csr_matrix(([1.0], ([0], [index])), shape=(1, width), dtype=float)


class MaterializationStrategy(abc.ABC):
    """Produces neighbor vectors ``φ_P`` and accounts the time per phase."""

    #: Registry/reporting name; subclasses set this.
    name: str = ""

    def __init__(self, network: HeterogeneousInformationNetwork) -> None:
        self.network = network

    @abc.abstractmethod
    def neighbor_row(
        self,
        path: MetaPath,
        vertex_index: int,
        stats: ExecutionStats | None = None,
    ) -> sparse.csr_matrix:
        """``φ_path(vertex)`` as a 1 x n CSR row over the target type."""

    def neighbor_matrix(
        self,
        path: MetaPath,
        vertex_indices: Sequence[int],
        stats: ExecutionStats | None = None,
    ) -> sparse.csr_matrix:
        """Stacked ``φ_path`` rows for ``vertex_indices`` (len x n CSR).

        The default implementation stacks per-vertex rows; subclasses may
        override with bulk paths.
        """
        width = self.network.num_vertices(path.target)
        if not vertex_indices:
            return sparse.csr_matrix((0, width), dtype=float)
        rows = []
        for index in vertex_indices:
            # Cooperative deadline enforcement: one check per materialized
            # vector bounds overrun latency to a single row's cost.
            check_deadline("neighbor-vector materialization")
            rows.append(self.neighbor_row(path, index, stats))
        return sparse.vstack(rows, format="csr")

    def index_size_bytes(self) -> int:
        """Bytes of index storage this strategy holds (0 when unindexed)."""
        return 0

    def _check_path(self, path: MetaPath) -> None:
        path.validate(self.network.schema)


class BaselineStrategy(MaterializationStrategy):
    """Unindexed execution: per-vertex frontier traversal (paper §6.1)."""

    name = "baseline"

    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        self._check_path(path)
        width = self.network.num_vertices(path.target)
        if stats is None:
            counts = neighbor_counts(
                self.network, path, VertexId(path.source, vertex_index)
            )
            return _counts_to_row(counts, width)
        with stats.timer.phase(PHASE_NOT_INDEXED):
            counts = neighbor_counts(
                self.network, path, VertexId(path.source, vertex_index)
            )
            row = _counts_to_row(counts, width)
        stats.traversed_vectors += 1
        return row


class PMStrategy(MaterializationStrategy):
    """Full length-2 pre-materialization (paper §6.2, PM).

    Parameters
    ----------
    network:
        The network to execute over.
    index:
        A pre-built index; when ``None`` every legal length-2 meta-path is
        materialized up front (the build cost is paid here, not at query
        time, matching the paper's offline indexing setting).
    """

    name = "pm"

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        index: MetaPathIndex | None = None,
        *,
        allow_stale: bool = False,
    ) -> None:
        super().__init__(network)
        self.index = index if index is not None else build_pm_index(network)
        # Snapshot the network's mutation counter: a pre-built index is
        # presumed consistent with the network *as passed in*.
        self._built_version = network.version
        self._allow_stale = allow_stale

    def index_size_bytes(self) -> int:
        return self.index.size_bytes()

    def _check_fresh(self) -> None:
        if self._allow_stale:
            return
        if self.network.version != self._built_version:
            raise ExecutionError(
                "the network changed after the PM index was built "
                f"(version {self._built_version} -> {self.network.version}); "
                "rebuild the index or pass allow_stale=True"
            )

    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        self._check_path(path)
        self._check_fresh()
        width = self.network.num_vertices(path.target)
        source_width = self.network.num_vertices(path.source)

        def compute() -> sparse.csr_matrix:
            if path.length == 0:
                return _identity_row(width, vertex_index)
            segments, tail = decompose_length2(path)
            if not segments:
                # Single-hop path: one adjacency row slice.
                return self.network.adjacency(path.types[0], path.types[1]).getrow(
                    vertex_index
                )
            first = self.index.lookup(segments[0], vertex_index)
            if first is None:
                raise ExecutionError(
                    f"PM index is missing a row for {segments[0]} "
                    f"(vertex {vertex_index}); was it built for this network?"
                )
            row = first
            for segment in segments[1:]:
                matrix = self.index.full_matrix(segment)
                if matrix is None:
                    raise ExecutionError(
                        f"PM index is missing the matrix for {segment}"
                    )
                check_deadline("indexed row multiplication")
                faultinject.check("matrix_multiply")
                row = row @ matrix
            if tail is not None:
                row = row @ self.network.adjacency(tail.types[0], tail.types[1])
            return row.tocsr()

        if vertex_index < 0 or vertex_index >= source_width:
            raise MetaPathError(
                f"vertex index {vertex_index} out of range for type {path.source!r}"
            )
        if stats is None:
            return compute()
        with stats.timer.phase(PHASE_INDEXED):
            row = compute()
        stats.indexed_vectors += 1
        return row

    def neighbor_matrix(self, path, vertex_indices, stats=None) -> sparse.csr_matrix:
        """Bulk path: slice all first-segment rows at once, then multiply."""
        self._check_path(path)
        self._check_fresh()
        width = self.network.num_vertices(path.target)
        if len(vertex_indices) == 0:
            return sparse.csr_matrix((0, width), dtype=float)

        def compute() -> sparse.csr_matrix:
            if path.length == 0:
                size = self.network.num_vertices(path.source)
                rows = [_identity_row(size, i) for i in vertex_indices]
                return sparse.vstack(rows, format="csr")
            segments, tail = decompose_length2(path)
            if not segments:
                adjacency = self.network.adjacency(path.types[0], path.types[1])
                return adjacency[list(vertex_indices), :].tocsr()
            first = self.index.full_matrix(segments[0])
            if first is None:
                raise ExecutionError(
                    f"PM index is missing the matrix for {segments[0]}"
                )
            block = first[list(vertex_indices), :]
            for segment in segments[1:]:
                matrix = self.index.full_matrix(segment)
                if matrix is None:
                    raise ExecutionError(
                        f"PM index is missing the matrix for {segment}"
                    )
                check_deadline("indexed block multiplication")
                faultinject.check("matrix_multiply")
                block = block @ matrix
            if tail is not None:
                block = block @ self.network.adjacency(tail.types[0], tail.types[1])
            return block.tocsr()

        if stats is None:
            return compute()
        with stats.timer.phase(PHASE_INDEXED):
            block = compute()
        stats.indexed_vectors += len(vertex_indices)
        return block


class SPMStrategy(MaterializationStrategy):
    """Selective pre-materialization (paper §6.2, SPM).

    Index rows exist only for a selected vertex subset; other vertices fall
    back to two-hop frontier traversal.  Each materialized vector is
    attributed to the indexed phase when its *start* row came from the
    index, else to the not-indexed phase, mirroring the paper's Figure 4
    accounting.
    """

    name = "spm"

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        index: MetaPathIndex | None = None,
        selected: Iterable[VertexId] | None = None,
        *,
        allow_stale: bool = False,
    ) -> None:
        super().__init__(network)
        if index is None:
            index = build_spm_index(network, selected or [])
        self.index = index
        self._built_version = network.version
        self._allow_stale = allow_stale

    def index_size_bytes(self) -> int:
        return self.index.size_bytes()

    def _check_fresh(self) -> None:
        if self._allow_stale:
            return
        if self.network.version != self._built_version:
            raise ExecutionError(
                "the network changed after the SPM index was built "
                f"(version {self._built_version} -> {self.network.version}); "
                "rebuild the index or pass allow_stale=True"
            )

    def _segment_row(
        self,
        segment: MetaPath,
        vertex_index: int,
        stats: ExecutionStats | None,
    ) -> sparse.csr_matrix:
        """One vertex's row of a length-2 segment: lookup or traversal."""
        width = self.network.num_vertices(segment.target)
        hit = self.index.lookup(segment, vertex_index)
        if hit is not None:
            if stats is not None:
                stats.indexed_vectors += 1
            return hit
        if stats is not None:
            stats.traversed_vectors += 1
        counts = neighbor_counts(
            self.network, segment, VertexId(segment.source, vertex_index)
        )
        return _counts_to_row(counts, width)

    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        self._check_path(path)
        self._check_fresh()
        width = self.network.num_vertices(path.target)
        if path.length == 0:
            return _identity_row(width, vertex_index)
        segments, tail = decompose_length2(path)
        if not segments:
            # Single hop: always a direct adjacency slice (cheap, indexed-like).
            if stats is None:
                return self.network.adjacency(path.types[0], path.types[1]).getrow(
                    vertex_index
                )
            with stats.timer.phase(PHASE_INDEXED):
                row = self.network.adjacency(path.types[0], path.types[1]).getrow(
                    vertex_index
                )
            stats.indexed_vectors += 1
            return row

        first_hit = self.index.has_row(segments[0], vertex_index)
        phase = PHASE_INDEXED if first_hit else PHASE_NOT_INDEXED

        def compute() -> sparse.csr_matrix:
            row = self._segment_row(segments[0], vertex_index, stats)
            for segment in segments[1:]:
                # Expand through the segment: Σ_j row[j] · φ_segment(vj).
                accumulator: sparse.csr_matrix | None = None
                for j, weight in zip(row.indices, row.data):
                    check_deadline("SPM segment expansion")
                    contribution = self._segment_row(segment, int(j), stats)
                    term = contribution.multiply(weight)
                    accumulator = term if accumulator is None else accumulator + term
                if accumulator is None:
                    return sparse.csr_matrix(
                        (1, self.network.num_vertices(segment.target)), dtype=float
                    )
                row = accumulator.tocsr()
            if tail is not None:
                row = row @ self.network.adjacency(tail.types[0], tail.types[1])
            return row.tocsr()

        if stats is None:
            return compute()
        with stats.timer.phase(phase):
            return compute()


def make_strategy(
    network: HeterogeneousInformationNetwork,
    name: str,
    *,
    index: MetaPathIndex | None = None,
    selected: Iterable[VertexId] | None = None,
) -> MaterializationStrategy:
    """Instantiate a strategy by name: ``"baseline"``, ``"pm"``, or ``"spm"``.

    Parameters
    ----------
    index:
        Pre-built index for ``"pm"``/``"spm"`` (built on demand otherwise).
    selected:
        SPM only: vertices to index when no pre-built index is supplied.
    """
    lowered = name.lower()
    if lowered == "baseline":
        return BaselineStrategy(network)
    if lowered == "pm":
        return PMStrategy(network, index=index)
    if lowered == "spm":
        return SPMStrategy(network, index=index, selected=selected)
    raise ExecutionError(
        f"unknown strategy {name!r}; expected baseline, pm, or spm"
    )
