"""Meta-path materialization strategies (paper Sections 6.1-6.2).

A strategy answers one question: *given a meta-path ``P`` and a start
vertex, produce the neighbor vector ``φ_P``* — and accounts the time spent
under the paper's phase taxonomy (not-indexed traversal vs indexed lookup).

* :class:`BaselineStrategy` materializes every vector by frontier traversal
  over the adjacency structure (dictionary accumulation, one hop at a
  time).  This models the paper's unindexed executor: per-vertex graph
  traversal whose cost grows with path length and vertex degree.
* :class:`PMStrategy` holds a full length-2 index: the first two hops are a
  row lookup, and remaining length-2 segments are row x cached-matrix
  products (the "multiplication of indexed vectors" of §6.2).
* :class:`SPMStrategy` holds a partial index: rows exist only for selected
  vertices.  Hits are lookups; misses fall back to two-hop traversal —
  producing exactly the phase mix Figure 4 analyzes.

Batched materialization
-----------------------
:meth:`MaterializationStrategy.neighbor_matrix` is the engine's hot path:
every query materializes ``φ_P`` for the whole candidate and reference set.
It processes the request in **blocks of at most** :data:`BLOCK_ROWS` rows;
each block is produced by one bulk :meth:`_materialize_block` call — a
handful of SciPy CSR matrix-matrix products — instead of ``|S|`` per-vertex
Python iterations.  Cooperative deadline checks run once per block, so an
expired budget still surfaces within one block's cost, and every returned
matrix is canonicalized (``float64``, duplicate-free, sorted indices) so
downstream equality comparisons and cache hashing are stable.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import abc

import numpy as np
from scipy import sparse

from repro import faultinject
from repro.engine.deadline import check_deadline
from repro.engine.index import MetaPathIndex, build_pm_index, build_spm_index
from repro.engine.stats import PHASE_INDEXED, PHASE_NOT_INDEXED, ExecutionStats
from repro.exceptions import ExecutionError, MetaPathError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.counting import neighbor_counts
from repro.metapath.materialize import decompose_length2, materialize_segment
from repro.metapath.metapath import MetaPath

__all__ = [
    "BLOCK_ROWS",
    "MaterializationStrategy",
    "BaselineStrategy",
    "PMStrategy",
    "SPMStrategy",
    "make_strategy",
]

#: Rows per materialization block.  Large enough that SciPy's C-level
#: sparse products dominate the per-block Python overhead, small enough
#: that one cooperative deadline check per block keeps overrun latency
#: bounded by a single block's cost.
BLOCK_ROWS = 512

# Shared all-zero 1 x width rows, one per width.  Empty neighbor vectors
# are common (isolated vertices, exhausted frontiers) and immutable under
# every CSR operation the engine performs, so one singleton per width
# avoids re-allocating three empty arrays per vertex.
_EMPTY_ROWS: dict[int, sparse.csr_matrix] = {}


def _empty_row(width: int) -> sparse.csr_matrix:
    row = _EMPTY_ROWS.get(width)
    if row is None:
        row = sparse.csr_matrix((1, width), dtype=np.float64)
        _EMPTY_ROWS[width] = row
    return row


def _counts_to_row(counts: dict[int, float], width: int) -> sparse.csr_matrix:
    """Pack a sparse ``{index: count}`` map into a 1 x width CSR row."""
    if not counts:
        return _empty_row(width)
    size = len(counts)
    indices = np.fromiter(counts.keys(), dtype=np.int64, count=size)
    data = np.fromiter(counts.values(), dtype=np.float64, count=size)
    order = np.argsort(indices, kind="stable")
    return sparse.csr_matrix(
        (data[order], indices[order], np.array([0, size], dtype=np.int64)),
        shape=(1, width),
    )


def _identity_row(width: int, index: int) -> sparse.csr_matrix:
    return sparse.csr_matrix(
        ([1.0], ([0], [index])), shape=(1, width), dtype=np.float64
    )


def _selection_matrix(indices: np.ndarray, width: int) -> sparse.csr_matrix:
    """The gather matrix ``S``: ``S @ M == M[indices, :]`` (k x width CSR)."""
    size = len(indices)
    return sparse.csr_matrix(
        (
            np.ones(size, dtype=np.float64),
            np.asarray(indices, dtype=np.int64),
            np.arange(size + 1, dtype=np.int64),
        ),
        shape=(size, width),
    )


def _canonical(matrix: sparse.spmatrix) -> sparse.csr_matrix:
    """Normalize to float64 CSR with summed duplicates and sorted indices.

    Every strategy funnels its output through this, so downstream ``==``
    comparisons, structural equality checks, and cache hashing never see
    dtype drift or non-canonical index order.
    """
    csr = matrix.tocsr()
    if csr.dtype != np.float64:
        csr = csr.astype(np.float64)
    csr.sum_duplicates()
    if not csr.has_sorted_indices:
        csr.sort_indices()
    return csr


def _stitch_rows(
    blocks: "list[tuple[np.ndarray, sparse.csr_matrix]]", total: int
) -> sparse.csr_matrix:
    """Reassemble partition blocks into their original request order.

    ``blocks`` pairs each sub-block with the output row positions it
    covers; one vstack plus one permutation gather restores request order.
    """
    parts = [block for _, block in blocks if block.shape[0]]
    positions = np.concatenate(
        [pos for pos, block in blocks if block.shape[0]]
    ) if parts else np.empty(0, dtype=np.int64)
    if len(parts) == 1 and np.array_equal(positions, np.arange(total)):
        return parts[0]
    stacked = sparse.vstack(parts, format="csr") if len(parts) > 1 else parts[0]
    order = np.argsort(positions, kind="stable")
    return stacked[order, :].tocsr()


class MaterializationStrategy(abc.ABC):
    """Produces neighbor vectors ``φ_P`` and accounts the time per phase."""

    #: Registry/reporting name; subclasses set this.
    name: str = ""

    #: Optional shared :class:`~repro.engine.caching.SubpathCache` attached
    #: by the serving layer: when set, the blocked materialization paths
    #: reuse full length-2 segment products across concurrent queries whose
    #: meta-paths overlap.  ``None`` (the default) leaves batch-library
    #: behavior untouched.
    subpath_cache = None

    def __init__(self, network: HeterogeneousInformationNetwork) -> None:
        self.network = network

    def _segment_product(self, segment: MetaPath) -> sparse.csr_matrix:
        """The full count matrix of a length-2 ``segment``, cache-assisted.

        Consults :attr:`subpath_cache` when attached (keyed by the current
        network version); on a miss the product is computed and offered
        back.  Counts are exact integers in float64, so substituting the
        cached ``A₁ @ A₂`` for the two chained hops is byte-identical —
        the property ``tests/properties`` pins.
        """
        cache = self.subpath_cache
        version = self.network.version
        matrix = cache.get(segment, version) if cache is not None else None
        if matrix is None:
            matrix = materialize_segment(self.network, segment)
            if cache is not None:
                cache.put(segment, version, matrix)
        return matrix

    @abc.abstractmethod
    def neighbor_row(
        self,
        path: MetaPath,
        vertex_index: int,
        stats: ExecutionStats | None = None,
    ) -> sparse.csr_matrix:
        """``φ_path(vertex)`` as a 1 x n CSR row over the target type."""

    def _materialize_block(
        self,
        path: MetaPath,
        vertex_indices: np.ndarray,
        stats: ExecutionStats | None,
    ) -> sparse.csr_matrix:
        """One bulk block of ``φ_path`` rows (≤ :data:`BLOCK_ROWS` of them).

        The default stacks per-vertex rows — a correct fallback for
        third-party strategies that only implement :meth:`neighbor_row`.
        The built-in strategies override it with matrix-product block
        paths; nothing on their query hot path iterates per vertex.
        """
        return sparse.vstack(
            [self.neighbor_row(path, int(index), stats) for index in vertex_indices],
            format="csr",
        )

    def neighbor_matrix(
        self,
        path: MetaPath,
        vertex_indices: Sequence[int],
        stats: ExecutionStats | None = None,
    ) -> sparse.csr_matrix:
        """Stacked ``φ_path`` rows for ``vertex_indices`` (len x n CSR).

        The request is processed in blocks of at most :data:`BLOCK_ROWS`
        rows; each block is one :meth:`_materialize_block` call, with one
        cooperative deadline check per block so overrun latency stays
        bounded by a single block's cost.
        """
        width = self.network.num_vertices(path.target)
        indices = np.asarray(list(vertex_indices), dtype=np.int64)
        if indices.size == 0:
            return sparse.csr_matrix((0, width), dtype=np.float64)
        source_width = self.network.num_vertices(path.source)
        low, high = int(indices.min()), int(indices.max())
        if low < 0 or high >= source_width:
            bad = low if low < 0 else high
            raise MetaPathError(
                f"vertex index {bad} out of range for type {path.source!r}"
            )
        blocks = []
        for start in range(0, len(indices), BLOCK_ROWS):
            # Cooperative deadline enforcement: one check per block bounds
            # overrun latency to a single block's materialization cost.
            check_deadline("neighbor-block materialization")
            blocks.append(
                self._materialize_block(
                    path, indices[start:start + BLOCK_ROWS], stats
                )
            )
        if stats is not None:
            stats.materialized_blocks += len(blocks)
        stacked = blocks[0] if len(blocks) == 1 else sparse.vstack(
            blocks, format="csr"
        )
        return _canonical(stacked)

    def index_size_bytes(self) -> int:
        """Bytes of index storage this strategy holds (0 when unindexed)."""
        return 0

    def _check_path(self, path: MetaPath) -> None:
        path.validate(self.network.schema)

    def _adjacency_chain(self, path: MetaPath) -> list[sparse.csr_matrix]:
        return [
            self.network.adjacency(left, right)
            for left, right in zip(path.types, path.types[1:])
        ]


class BaselineStrategy(MaterializationStrategy):
    """Unindexed execution: per-vertex frontier traversal (paper §6.1).

    Bulk requests use the selection-matrix gather ``S @ A₁ @ A₂ @ …``:
    one sparse product per hop materializes the whole block at once.  For
    network implementations that cannot supply adjacency matrices (or when
    ``use_matrix_products=False``), the block falls back to one bulk
    frontier traversal assembled into a single CSR per block.
    """

    name = "baseline"

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        *,
        use_matrix_products: bool = True,
    ) -> None:
        super().__init__(network)
        self.use_matrix_products = use_matrix_products

    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        self._check_path(path)
        width = self.network.num_vertices(path.target)
        if stats is None:
            counts = neighbor_counts(
                self.network, path, VertexId(path.source, vertex_index)
            )
            return _counts_to_row(counts, width)
        with stats.timer.phase(PHASE_NOT_INDEXED):
            counts = neighbor_counts(
                self.network, path, VertexId(path.source, vertex_index)
            )
            row = _counts_to_row(counts, width)
        stats.traversed_vectors += 1
        return row

    # -- bulk path -------------------------------------------------------
    def _materialize_block(self, path, vertex_indices, stats):
        self._check_path(path)
        if stats is None:
            return self._block(path, vertex_indices)
        with stats.timer.phase(PHASE_NOT_INDEXED):
            block = self._block(path, vertex_indices)
        stats.traversed_vectors += len(vertex_indices)
        return block

    def _block(self, path, vertex_indices) -> sparse.csr_matrix:
        source_width = self.network.num_vertices(path.source)
        if path.length == 0:
            return _selection_matrix(vertex_indices, source_width)
        if self.use_matrix_products:
            try:
                chain = self._adjacency_chain(path)
            except NotImplementedError:
                return self._frontier_block(path, vertex_indices)
            # No matrix_multiply fault point here: the unindexed rung is the
            # degradation ladder's infallible floor, exactly like the
            # row-at-a-time traversal path.  (SubpathCache faults are
            # self-healing inside the cache, so consulting it below cannot
            # make this rung raise.)
            block = _selection_matrix(vertex_indices, source_width)
            if self.subpath_cache is not None and path.length >= 2:
                segments, tail = decompose_length2(path)
                for segment in segments:
                    block = block @ self._segment_product(segment)
                if tail is not None:
                    block = block @ self.network.adjacency(
                        tail.types[0], tail.types[1]
                    )
                return block.tocsr()
            for step in chain:
                block = block @ step
            return block.tocsr()
        return self._frontier_block(path, vertex_indices)

    def _frontier_block(self, path, vertex_indices) -> sparse.csr_matrix:
        """Bulk frontier fallback: one CSR assembled per block, no vstack."""
        width = self.network.num_vertices(path.target)
        indptr = np.zeros(len(vertex_indices) + 1, dtype=np.int64)
        column_chunks: list[np.ndarray] = []
        data_chunks: list[np.ndarray] = []
        for position, index in enumerate(vertex_indices):
            counts = neighbor_counts(
                self.network, path, VertexId(path.source, int(index))
            )
            size = len(counts)
            indptr[position + 1] = indptr[position] + size
            if size:
                columns = np.fromiter(counts.keys(), dtype=np.int64, count=size)
                values = np.fromiter(counts.values(), dtype=np.float64, count=size)
                order = np.argsort(columns, kind="stable")
                column_chunks.append(columns[order])
                data_chunks.append(values[order])
        columns = (
            np.concatenate(column_chunks)
            if column_chunks
            else np.empty(0, dtype=np.int64)
        )
        data = (
            np.concatenate(data_chunks)
            if data_chunks
            else np.empty(0, dtype=np.float64)
        )
        return sparse.csr_matrix(
            (data, columns, indptr), shape=(len(vertex_indices), width)
        )


class PMStrategy(MaterializationStrategy):
    """Full length-2 pre-materialization (paper §6.2, PM).

    Parameters
    ----------
    network:
        The network to execute over.
    index:
        A pre-built index; when ``None`` every legal length-2 meta-path is
        materialized up front (the build cost is paid here, not at query
        time, matching the paper's offline indexing setting).
    """

    name = "pm"

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        index: MetaPathIndex | None = None,
        *,
        allow_stale: bool = False,
    ) -> None:
        super().__init__(network)
        self.index = index if index is not None else build_pm_index(network)
        # Snapshot the network's mutation counter: a pre-built index is
        # presumed consistent with the network *as passed in*.
        self._built_version = network.version
        self._allow_stale = allow_stale

    def index_size_bytes(self) -> int:
        return self.index.size_bytes()

    def _check_fresh(self) -> None:
        if self._allow_stale:
            return
        if self.network.version != self._built_version:
            raise ExecutionError(
                "the network changed after the PM index was built "
                f"(version {self._built_version} -> {self.network.version}); "
                "rebuild the index or pass allow_stale=True"
            )

    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        self._check_path(path)
        self._check_fresh()
        width = self.network.num_vertices(path.target)
        source_width = self.network.num_vertices(path.source)

        def compute() -> sparse.csr_matrix:
            if path.length == 0:
                return _identity_row(width, vertex_index)
            segments, tail = decompose_length2(path)
            if not segments:
                # Single-hop path: one adjacency row slice.
                return _canonical(
                    self.network.adjacency(path.types[0], path.types[1]).getrow(
                        vertex_index
                    )
                )
            first = self.index.lookup(segments[0], vertex_index)
            if first is None:
                raise ExecutionError(
                    f"PM index is missing a row for {segments[0]} "
                    f"(vertex {vertex_index}); was it built for this network?"
                )
            row = first
            for segment in segments[1:]:
                matrix = self.index.full_matrix(segment)
                if matrix is None:
                    raise ExecutionError(
                        f"PM index is missing the matrix for {segment}"
                    )
                check_deadline("indexed row multiplication")
                faultinject.check("matrix_multiply")
                row = row @ matrix
            if tail is not None:
                row = row @ self.network.adjacency(tail.types[0], tail.types[1])
            return _canonical(row)

        if vertex_index < 0 or vertex_index >= source_width:
            raise MetaPathError(
                f"vertex index {vertex_index} out of range for type {path.source!r}"
            )
        if stats is None:
            return compute()
        with stats.timer.phase(PHASE_INDEXED):
            row = compute()
        stats.indexed_vectors += 1
        return row

    # -- bulk path -------------------------------------------------------
    def _materialize_block(self, path, vertex_indices, stats):
        """Slice one whole index-row block, then chain block x matrix products."""
        self._check_path(path)
        self._check_fresh()

        def compute() -> sparse.csr_matrix:
            source_width = self.network.num_vertices(path.source)
            if path.length == 0:
                return _selection_matrix(vertex_indices, source_width)
            segments, tail = decompose_length2(path)
            if not segments:
                adjacency = self.network.adjacency(path.types[0], path.types[1])
                return _selection_matrix(vertex_indices, source_width) @ adjacency
            first = self.index.full_matrix(segments[0])
            if first is None:
                raise ExecutionError(
                    f"PM index is missing the matrix for {segments[0]}"
                )
            faultinject.check("matrix_multiply")
            block = _selection_matrix(vertex_indices, source_width) @ first
            for segment in segments[1:]:
                matrix = self.index.full_matrix(segment)
                if matrix is None:
                    raise ExecutionError(
                        f"PM index is missing the matrix for {segment}"
                    )
                check_deadline("indexed block multiplication")
                faultinject.check("matrix_multiply")
                block = block @ matrix
            if tail is not None:
                block = block @ self.network.adjacency(tail.types[0], tail.types[1])
            return block.tocsr()

        if stats is None:
            return compute()
        with stats.timer.phase(PHASE_INDEXED):
            block = compute()
        stats.indexed_vectors += len(vertex_indices)
        return block


class SPMStrategy(MaterializationStrategy):
    """Selective pre-materialization (paper §6.2, SPM).

    Index rows exist only for a selected vertex subset; other vertices fall
    back to two-hop frontier traversal.  Each materialized vector is
    attributed to the indexed phase when its *start* row came from the
    index, else to the not-indexed phase, mirroring the paper's Figure 4
    accounting.

    Bulk requests partition each block into index **hits** — gathered with
    one fancy-indexed row slice — and **misses** — materialized by one
    selection-gather block traversal through the segment's adjacency
    matrices.  Later segments run as block x adjacency products; their time
    is split between the indexed and not-indexed phases by *element
    counts* (how many per-vertex segment fetches the row-at-a-time path
    would have served from the index vs by traversal), so the Figure 4
    phase mix stays faithful without per-row timers.
    """

    name = "spm"

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        index: MetaPathIndex | None = None,
        selected: Iterable[VertexId] | None = None,
        *,
        allow_stale: bool = False,
    ) -> None:
        super().__init__(network)
        if index is None:
            index = build_spm_index(network, selected or [])
        self.index = index
        self._built_version = network.version
        self._allow_stale = allow_stale

    def index_size_bytes(self) -> int:
        return self.index.size_bytes()

    def _check_fresh(self) -> None:
        if self._allow_stale:
            return
        if self.network.version != self._built_version:
            raise ExecutionError(
                "the network changed after the SPM index was built "
                f"(version {self._built_version} -> {self.network.version}); "
                "rebuild the index or pass allow_stale=True"
            )

    def _segment_row(
        self,
        segment: MetaPath,
        vertex_index: int,
        stats: ExecutionStats | None,
    ) -> sparse.csr_matrix:
        """One vertex's row of a length-2 segment: lookup or traversal."""
        width = self.network.num_vertices(segment.target)
        hit = self.index.lookup(segment, vertex_index)
        if hit is not None:
            if stats is not None:
                stats.indexed_vectors += 1
            return hit
        if stats is not None:
            stats.traversed_vectors += 1
        counts = neighbor_counts(
            self.network, segment, VertexId(segment.source, vertex_index)
        )
        return _counts_to_row(counts, width)

    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        self._check_path(path)
        self._check_fresh()
        width = self.network.num_vertices(path.target)
        if path.length == 0:
            return _identity_row(width, vertex_index)
        segments, tail = decompose_length2(path)
        if not segments:
            # Single hop: always a direct adjacency slice (cheap, indexed-like).
            if stats is None:
                return _canonical(
                    self.network.adjacency(path.types[0], path.types[1]).getrow(
                        vertex_index
                    )
                )
            with stats.timer.phase(PHASE_INDEXED):
                row = _canonical(
                    self.network.adjacency(path.types[0], path.types[1]).getrow(
                        vertex_index
                    )
                )
            stats.indexed_vectors += 1
            return row

        first_hit = self.index.has_row(segments[0], vertex_index)
        phase = PHASE_INDEXED if first_hit else PHASE_NOT_INDEXED

        def compute() -> sparse.csr_matrix:
            row = self._segment_row(segments[0], vertex_index, stats)
            for segment in segments[1:]:
                # Expand through the segment: Σ_j row[j] · φ_segment(vj).
                accumulator: sparse.csr_matrix | None = None
                for j, weight in zip(row.indices, row.data):
                    check_deadline("SPM segment expansion")
                    contribution = self._segment_row(segment, int(j), stats)
                    term = contribution.multiply(weight)
                    accumulator = term if accumulator is None else accumulator + term
                if accumulator is None:
                    return _empty_row(self.network.num_vertices(segment.target))
                row = accumulator.tocsr()
            if tail is not None:
                row = row @ self.network.adjacency(tail.types[0], tail.types[1])
            return _canonical(row)

        if stats is None:
            return compute()
        with stats.timer.phase(phase):
            return compute()

    # -- bulk path -------------------------------------------------------
    def _materialize_block(self, path, vertex_indices, stats):
        self._check_path(path)
        self._check_fresh()
        source_width = self.network.num_vertices(path.source)
        if path.length == 0:
            return _selection_matrix(vertex_indices, source_width)
        segments, tail = decompose_length2(path)
        if not segments:
            # Single hop: one selection-gather of adjacency rows.
            def gather() -> sparse.csr_matrix:
                adjacency = self.network.adjacency(path.types[0], path.types[1])
                return _selection_matrix(vertex_indices, source_width) @ adjacency

            if stats is None:
                return gather()
            with stats.timer.phase(PHASE_INDEXED):
                block = gather()
            stats.indexed_vectors += len(vertex_indices)
            return block

        first = segments[0]
        coverage = self.index.coverage_mask(first, source_width)
        if coverage is None:
            hit_mask = np.ones(len(vertex_indices), dtype=bool)
        else:
            hit_mask = coverage[vertex_indices]
        hit_positions = np.flatnonzero(hit_mask)
        miss_positions = np.flatnonzero(~hit_mask)

        parts: list[tuple[np.ndarray, sparse.csr_matrix]] = []
        if hit_positions.size:
            # Index hits: one fancy-indexed row gather from the stored rows.
            def gather_hits() -> sparse.csr_matrix:
                return self.index.gather_rows(first, vertex_indices[hit_mask])

            if stats is None:
                hit_block = gather_hits()
            else:
                with stats.timer.phase(PHASE_INDEXED):
                    hit_block = gather_hits()
                stats.indexed_vectors += int(hit_positions.size)
            parts.append((hit_positions, hit_block))
        if miss_positions.size:
            # Index misses: the single block traversal the bulk API allows —
            # a selection gather pushed through the segment's two hops.
            def traverse_misses() -> sparse.csr_matrix:
                block = _selection_matrix(vertex_indices[~hit_mask], source_width)
                if self.subpath_cache is not None:
                    return (block @ self._segment_product(first)).tocsr()
                for step in self._adjacency_chain(first):
                    block = block @ step
                return block.tocsr()

            if stats is None:
                miss_block = traverse_misses()
            else:
                with stats.timer.phase(PHASE_NOT_INDEXED):
                    miss_block = traverse_misses()
                stats.traversed_vectors += int(miss_positions.size)
            parts.append((miss_positions, miss_block))

        started = time.perf_counter()
        block = _stitch_rows(parts, len(vertex_indices))
        indexed_elements = 0
        traversed_elements = 0
        for segment in segments[1:]:
            if stats is not None:
                # Element counts: the per-row path fetches φ_segment(vj)
                # once per stored (row, j) element; count how many of those
                # fetches the index would serve.
                block = _canonical(block)
                segment_coverage = self.index.coverage_mask(
                    segment, block.shape[1]
                )
                if segment_coverage is None:
                    segment_hits = int(block.nnz)
                else:
                    segment_hits = int(segment_coverage[block.indices].sum())
                segment_misses = int(block.nnz) - segment_hits
                indexed_elements += segment_hits
                traversed_elements += segment_misses
                stats.indexed_vectors += segment_hits
                stats.traversed_vectors += segment_misses
            check_deadline("SPM segment block expansion")
            if self.subpath_cache is not None:
                block = block @ self._segment_product(segment)
            else:
                for step in self._adjacency_chain(segment):
                    block = block @ step
        if tail is not None:
            block = block @ self.network.adjacency(tail.types[0], tail.types[1])
        if stats is not None:
            # Split the shared block work (stitch + later segments + tail)
            # between the two phases by element counts; when no expansion
            # elements exist, fall back to the first segment's row mix.
            elapsed = time.perf_counter() - started
            total = indexed_elements + traversed_elements
            if total == 0:
                indexed_elements = int(hit_positions.size)
                total = len(vertex_indices)
            fraction = indexed_elements / total if total else 1.0
            stats.timer.add(PHASE_INDEXED, elapsed * fraction)
            stats.timer.add(PHASE_NOT_INDEXED, elapsed * (1.0 - fraction))
        return block.tocsr()


def make_strategy(
    network: HeterogeneousInformationNetwork,
    name: str,
    *,
    index: MetaPathIndex | None = None,
    selected: Iterable[VertexId] | None = None,
) -> MaterializationStrategy:
    """Instantiate a strategy by name: ``"baseline"``, ``"pm"``, or ``"spm"``.

    Parameters
    ----------
    index:
        Pre-built index for ``"pm"``/``"spm"`` (built on demand otherwise).
    selected:
        SPM only: vertices to index when no pre-built index is supplied.
    """
    lowered = name.lower()
    if lowered == "baseline":
        return BaselineStrategy(network)
    if lowered == "pm":
        return PMStrategy(network, index=index)
    if lowered == "spm":
        return SPMStrategy(network, index=index, selected=selected)
    raise ExecutionError(
        f"unknown strategy {name!r}; expected baseline, pm, or spm"
    )
