"""Resilient query execution: deadlines, retries, breakers, guardrails.

The paper's engine (§6) assumes index materialization and query evaluation
always succeed.  A production deployment cannot: index builds hit transient
I/O faults, meta-path matrices outgrow memory, and interactive callers need
bounded latency.  This module supplies the four resilience primitives the
engine composes:

* :class:`Deadline` — a cooperative per-query time budget, checked inside
  materialization and scoring loops via :func:`check_deadline`;
* :func:`retry_with_backoff` — exponential-backoff retry for transient
  index/cache failures;
* :class:`CircuitBreaker` — opens after N consecutive failures of a guarded
  operation (PM/SPM index construction) and short-circuits further attempts
  until a reset window elapses;
* :class:`ResourceGuard` plus the ``estimate_*`` helpers — refuse index
  builds whose estimated materialized size exceeds a memory budget.

:class:`FallbackStrategy` ties them into the **degradation ladder**:
PM → SPM → on-the-fly counting.  A query keeps its answer as long as *any*
rung can produce neighbor vectors; the result is then flagged
``degraded=True`` with an explicit reason instead of hard-failing.

All time sources and sleeps are injectable so the resilience test suite is
deterministic (see ``tests/engine/test_resilience.py`` and
:mod:`repro.faultinject`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from scipy import sparse

from repro.engine.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.engine.index import MetaPathIndex, build_pm_index, build_spm_index
from repro.engine.stats import ExecutionStats
from repro.engine.strategies import (
    BaselineStrategy,
    MaterializationStrategy,
    PMStrategy,
    SPMStrategy,
)
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
    ResourceLimitError,
    TransientFaultError,
)
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.metapath import MetaPath
from repro.utils.sparsetools import INDEX_BYTES, POINTER_BYTES, VALUE_BYTES

__all__ = [
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
    "retry_with_backoff",
    "CircuitBreaker",
    "ResourceGuard",
    "estimate_length2_nnz",
    "estimate_pm_index_bytes",
    "estimate_spm_index_bytes",
    "ResiliencePolicy",
    "FallbackStrategy",
    "DEGRADATION_LADDER",
]

#: The full ladder, strongest rung first.  A detector configured for a
#: weaker rung starts partway down (SPM falls back to baseline only).
DEGRADATION_LADDER = ("pm", "spm", "baseline")


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------
def retry_with_backoff(
    operation: Callable[[], object],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    multiplier: float = 2.0,
    retryable: tuple[type[Exception], ...] = (TransientFaultError,),
    sleep: Callable[[float], None] = time.sleep,
    deadline: Deadline | None = None,
):
    """Run ``operation``, retrying transient failures with exponential backoff.

    Only exceptions in ``retryable`` are retried; anything else propagates
    immediately.  The last transient error propagates after ``attempts``
    tries.  When a ``deadline`` is given, it is checked before each backoff
    sleep so retries cannot silently eat a query's whole budget.

    ``sleep`` is injectable so tests run in zero wall time.
    """
    if attempts < 1:
        raise ExecutionError(f"retry attempts must be >= 1, got {attempts}")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return operation()
        except retryable:
            if attempt == attempts:
                raise
            if deadline is not None:
                deadline.check("retry backoff")
            sleep(delay)
            delay *= multiplier
    raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Classic three-state breaker around a failure-prone operation.

    * **closed** — calls pass through; consecutive failures are counted.
    * **open** — after ``failure_threshold`` consecutive failures, calls are
      short-circuited with :class:`CircuitOpenError` (the guarded operation
      is *not* invoked).
    * **half-open** — once ``reset_seconds`` have elapsed, one trial call is
      allowed; success closes the breaker, failure re-opens it.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ExecutionError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.name = name
        self._clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self._opened_at: float | None = None

    def _before_call(self) -> None:
        if self.state == self.OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at < self.reset_seconds:
                label = f" {self.name!r}" if self.name else ""
                raise CircuitOpenError(
                    f"circuit breaker{label} is open after "
                    f"{self.consecutive_failures} consecutive failures; "
                    f"retrying in {self.reset_seconds:.3g}s windows"
                )
            self.state = self.HALF_OPEN

    def seconds_until_half_open(self) -> float:
        """Time until an open breaker permits its half-open trial call.

        ``0.0`` when the breaker is closed, already half-open, or its reset
        window has elapsed — i.e. whenever a call would be allowed right
        now.  The replica router aggregates this across candidates into the
        ``Retry-After`` hint of its all-replicas-down 503 response.
        """
        if self.state != self.OPEN or self._opened_at is None:
            return 0.0
        return max(0.0, self.reset_seconds - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED
        self._opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self._opened_at = self._clock()

    def call(self, operation: Callable[[], object]):
        """Run ``operation`` through the breaker, updating its state."""
        self._before_call()
        try:
            result = operation()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


# ----------------------------------------------------------------------
# Memory guardrails
# ----------------------------------------------------------------------
def _row_bytes(nnz: float, rows: int = 1) -> float:
    return (VALUE_BYTES + INDEX_BYTES) * nnz + POINTER_BYTES * (rows + 1)


def estimate_length2_nnz(
    network: HeterogeneousInformationNetwork, path: MetaPath
) -> float:
    """Expected non-zeros of the materialized count matrix of a 2-hop path.

    Uses the standard sparse-product estimate — ``nnz(A·B) ≈ nnz(A) ·
    (nnz(B) / rows(B))``, capped at dense — which only needs the adjacency
    nnz counts, never the product itself.  That is the whole point: the
    guardrail must price a build *without* performing it.
    """
    if path.length != 2:
        raise ExecutionError(
            f"estimate_length2_nnz expects a 2-hop path, got {path}"
        )
    first = network.adjacency(path.types[0], path.types[1])
    second = network.adjacency(path.types[1], path.types[2])
    rows, cols = first.shape[0], second.shape[1]
    fanout = second.nnz / max(1, second.shape[0])
    return min(float(rows) * float(cols), first.nnz * fanout)


def estimate_pm_index_bytes(network: HeterogeneousInformationNetwork) -> int:
    """Estimated bytes of a full PM index (every legal length-2 meta-path)."""
    total = 0.0
    for types in network.schema.length2_metapaths():
        path = MetaPath(types)
        nnz = estimate_length2_nnz(network, path)
        total += _row_bytes(nnz, rows=network.num_vertices(path.source))
    return int(total)


def estimate_spm_index_bytes(
    network: HeterogeneousInformationNetwork,
    selected: Iterable[VertexId],
) -> int:
    """Estimated bytes of an SPM index covering ``selected`` vertices.

    Prices each selected vertex at the average row weight of every legal
    length-2 path starting at its type.
    """
    per_type_row_bytes: dict[str, float] = {}
    for types in network.schema.length2_metapaths():
        path = MetaPath(types)
        rows = max(1, network.num_vertices(path.source))
        avg_row_nnz = estimate_length2_nnz(network, path) / rows
        per_type_row_bytes[path.source] = per_type_row_bytes.get(
            path.source, 0.0
        ) + _row_bytes(avg_row_nnz)
    return int(
        sum(per_type_row_bytes.get(vertex.type, 0.0) for vertex in selected)
    )


@dataclass
class ResourceGuard:
    """Refuses operations whose estimated footprint exceeds a byte budget.

    ``max_memory_bytes=None`` disables the guard (every estimate passes).
    """

    max_memory_bytes: int | None = None

    def check_estimate(self, estimated_bytes: int, what: str) -> None:
        """Raise :class:`ResourceLimitError` when the estimate is over budget."""
        if self.max_memory_bytes is None:
            return
        if estimated_bytes > self.max_memory_bytes:
            raise ResourceLimitError(
                f"{what} is estimated at {estimated_bytes / 1e6:.1f} MB, over "
                f"the {self.max_memory_bytes / 1e6:.1f} MB memory budget",
                estimated_bytes=estimated_bytes,
                limit_bytes=self.max_memory_bytes,
            )


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass
class ResiliencePolicy:
    """Tunable knobs for resilient execution, shared across queries.

    One policy instance can back many detectors; circuit breakers are held
    *on the policy* so consecutive failures accumulate across rebuilds
    instead of resetting with every strategy object.

    Attributes
    ----------
    timeout_seconds:
        Per-query wall-clock budget (``None`` = unlimited).
    max_memory_mb:
        Ceiling on *estimated* index-build size (``None`` = unlimited).
    retry_attempts, retry_base_delay, retry_multiplier:
        Exponential-backoff settings for transient build failures.
    breaker_threshold, breaker_reset_seconds:
        Circuit-breaker settings for index construction.
    allow_degraded:
        Permit the PM → SPM → on-the-fly ladder.  When false, a failed rung
        raises instead of degrading.
    allow_partial:
        Permit a partial (fewer feature meta-paths than requested) result
        when the deadline expires mid-scoring; the alternative is raising
        :class:`DeadlineExceededError`.
    clock, sleep:
        Injectable time sources for deterministic tests.
    """

    timeout_seconds: float | None = None
    max_memory_mb: float | None = None
    retry_attempts: int = 3
    retry_base_delay: float = 0.05
    retry_multiplier: float = 2.0
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 30.0
    allow_degraded: bool = True
    allow_partial: bool = True
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
    _breakers: dict[str, CircuitBreaker] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def max_memory_bytes(self) -> int | None:
        if self.max_memory_mb is None:
            return None
        return int(self.max_memory_mb * 1e6)

    def deadline(self) -> Deadline | None:
        """A fresh per-query deadline, or ``None`` without a timeout."""
        if self.timeout_seconds is None:
            return None
        return Deadline(self.timeout_seconds, clock=self.clock)

    def resource_guard(self) -> ResourceGuard:
        return ResourceGuard(self.max_memory_bytes)

    def breaker(self, key: str) -> CircuitBreaker:
        """The (policy-lifetime) circuit breaker guarding operation ``key``."""
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_seconds=self.breaker_reset_seconds,
                clock=self.clock,
                name=key,
            )
            self._breakers[key] = breaker
        return breaker

    def retry(self, operation: Callable[[], object]):
        """Run ``operation`` under this policy's backoff settings."""
        return retry_with_backoff(
            operation,
            attempts=self.retry_attempts,
            base_delay=self.retry_base_delay,
            multiplier=self.retry_multiplier,
            sleep=self.sleep,
            deadline=current_deadline(),
        )


# ----------------------------------------------------------------------
# The degradation ladder
# ----------------------------------------------------------------------
class FallbackStrategy(MaterializationStrategy):
    """Materialization with a degradation ladder: PM → SPM → on-the-fly.

    Rung strategies are built lazily; index construction runs through the
    policy's circuit breaker, retry-with-backoff, and memory guard.  When a
    rung cannot be built — or fails while serving vectors — the ladder
    demotes to the next rung and records why, so the executor can flag the
    result ``degraded=True`` with a concrete reason instead of failing the
    query.  The final rung (on-the-fly traversal) needs no index and cannot
    fail to build, so a query always gets an answer unless its deadline
    expires first.

    Bulk requests delegate wholesale to the active rung's
    ``neighbor_matrix``, so the wrapper inherits each rung's batched block
    path (and its block-granular deadline and fault-point checks); a rung
    failure mid-block demotes and re-runs the whole request on the next
    rung.

    Parameters
    ----------
    network:
        The network to execute over.
    ladder:
        Rung names strongest-first; defaults to the requested strategy's
        suffix of ``DEGRADATION_LADDER``.
    policy:
        Shared :class:`ResiliencePolicy` (a default one is created when
        omitted).
    spm_selected:
        Vertices to index when the SPM rung is built.
    """

    name = "resilient"

    def __init__(
        self,
        network: HeterogeneousInformationNetwork,
        *,
        ladder: Sequence[str] = DEGRADATION_LADDER,
        policy: ResiliencePolicy | None = None,
        spm_selected: Iterable[VertexId] | None = None,
    ) -> None:
        super().__init__(network)
        if not ladder:
            raise ExecutionError("the degradation ladder needs at least one rung")
        unknown = [rung for rung in ladder if rung not in DEGRADATION_LADDER]
        if unknown:
            raise ExecutionError(
                f"unknown ladder rungs {unknown}; expected a subsequence of "
                f"{DEGRADATION_LADDER}"
            )
        self.ladder = tuple(ladder)
        self.policy = policy if policy is not None else ResiliencePolicy()
        self._spm_selected = list(spm_selected or [])
        self._position = 0
        self._built: dict[str, MaterializationStrategy] = {}
        #: ``(rung, reason)`` pairs, in demotion order.
        self.events: list[tuple[str, str]] = []

    # -- ladder state ---------------------------------------------------
    @property
    def active_rung(self) -> str:
        """The rung currently answering queries."""
        return self.ladder[min(self._position, len(self.ladder) - 1)]

    @property
    def degraded(self) -> bool:
        """True once any rung has been demoted."""
        return bool(self.events)

    @property
    def degradation_reason(self) -> str | None:
        """Human-readable demotion history (``None`` while undegraded)."""
        if not self.events:
            return None
        return "; ".join(f"{rung}: {reason}" for rung, reason in self.events)

    def _demote(self, rung: str, reason: str) -> None:
        self.events.append((rung, reason))
        self._position += 1

    # -- rung construction ----------------------------------------------
    def _build_rung(self, rung: str) -> MaterializationStrategy:
        guard = self.policy.resource_guard()
        if rung == "pm":
            guard.check_estimate(
                estimate_pm_index_bytes(self.network), "the PM index build"
            )
            index = self._guarded_build("pm", lambda: build_pm_index(self.network))
            return PMStrategy(self.network, index=index)
        if rung == "spm":
            guard.check_estimate(
                estimate_spm_index_bytes(self.network, self._spm_selected),
                "the SPM index build",
            )
            index = self._guarded_build(
                "spm", lambda: build_spm_index(self.network, self._spm_selected)
            )
            return SPMStrategy(self.network, index=index)
        return BaselineStrategy(self.network)

    def _guarded_build(
        self, key: str, builder: Callable[[], MetaPathIndex]
    ) -> MetaPathIndex:
        """Index construction behind the breaker, with transient retries."""
        breaker = self.policy.breaker(f"{key}-index-build")
        return breaker.call(lambda: self.policy.retry(builder))

    def _active_strategy(self) -> MaterializationStrategy:
        while self._position < len(self.ladder):
            rung = self.ladder[self._position]
            built = self._built.get(rung)
            if built is not None:
                return built
            try:
                strategy = self._build_rung(rung)
            except DeadlineExceededError:
                raise
            except ExecutionError as error:
                if not self.policy.allow_degraded:
                    raise
                self._demote(rung, f"build failed ({error})")
                continue
            self._built[rung] = strategy
            return strategy
        raise ExecutionError(
            "degradation ladder exhausted: " + (self.degradation_reason or "")
        )

    # -- MaterializationStrategy interface -------------------------------
    def _call(self, method: str, path, arg, stats: ExecutionStats | None):
        while True:
            strategy = self._active_strategy()
            try:
                return getattr(strategy, method)(path, arg, stats)
            except DeadlineExceededError:
                raise
            except ExecutionError as error:
                if (
                    not self.policy.allow_degraded
                    or self._position >= len(self.ladder) - 1
                ):
                    raise
                self._demote(self.ladder[self._position], f"{method} failed ({error})")

    def neighbor_row(self, path, vertex_index, stats=None) -> sparse.csr_matrix:
        return self._call("neighbor_row", path, vertex_index, stats)

    def neighbor_matrix(self, path, vertex_indices, stats=None) -> sparse.csr_matrix:
        return self._call("neighbor_matrix", path, vertex_indices, stats)

    def index_size_bytes(self) -> int:
        strategy = self._built.get(self.active_rung)
        return strategy.index_size_bytes() if strategy is not None else 0
