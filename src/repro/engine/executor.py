"""The query executor: parse → validate → evaluate → score → rank.

Implements the two-step execution of Section 6.1 — retrieve ``Sc``/``Sr``,
then compute outlierness — using the vectorized Equation 1 evaluation by
default.  Multiple feature meta-paths are handled the way Section 5.1
suggests: scores are computed per meta-path independently and combined as a
weighted average.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse

from repro.core.measures import Measure, get_measure
from repro.core.results import OutlierResult
from repro.engine.deadline import Deadline, check_deadline, deadline_scope
from repro.engine.evaluator import SetEvaluator
from repro.engine.stats import PHASE_SCORING, ExecutionStats
from repro.engine.strategies import MaterializationStrategy
from repro.exceptions import (
    DeadlineExceededError,
    DegradedResultWarning,
    ExecutionError,
    QueryError,
    ReproError,
)
from repro.hin.network import VertexId
from repro.metapath.metapath import WeightedMetaPath
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.semantics import ValidatedQuery, validate_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.resilience import ResiliencePolicy

__all__ = ["QueryExecutor", "BatchExecution"]


class BatchExecution(tuple):
    """Outcome of :meth:`QueryExecutor.execute_many`.

    A 2-tuple ``(results, stats)`` — so existing ``results, stats = ...``
    unpacking keeps working — extended with ``errors``: per-query execution
    failures keyed by the query's index in the input list, so one bad query
    no longer aborts (or silently vanishes from) a batch.
    """

    results: "list[OutlierResult]"
    stats: ExecutionStats
    errors: "dict[int, ReproError]"

    def __new__(
        cls,
        results: list[OutlierResult],
        stats: ExecutionStats,
        errors: dict[int, ReproError],
    ) -> "BatchExecution":
        self = super().__new__(cls, (results, stats))
        self.results = results
        self.stats = stats
        self.errors = errors
        return self


class QueryExecutor:
    """Executes outlier queries over one network with one strategy.

    Parameters
    ----------
    strategy:
        Materialization strategy (Baseline / PM / SPM).
    measure:
        Outlierness measure instance or registry name (default NetOut).
    combine:
        How multiple feature meta-paths combine (Section 5.1 names the
        options and leaves the choice open):

        * ``"score"`` (default) — weighted average of per-path Ω scores;
        * ``"rank"`` — weighted average of per-path outlier *ranks*
          (robust to per-path scale differences);
        * ``"connectivity"`` — redefine connectivity as the weighted sum of
          per-path connectivities (neighbor vectors are concatenated with
          √weight scaling, then scored once).
    collect_stats:
        When true (default) each result carries per-phase
        :class:`~repro.engine.stats.ExecutionStats`.
    resilience:
        Optional :class:`~repro.engine.resilience.ResiliencePolicy`.  When
        set, every query runs under the policy's deadline, and an expired
        deadline mid-scoring may yield a *partial* result (fewer feature
        meta-paths than requested, ``degraded=True``) instead of raising,
        if the policy allows it.

    Examples
    --------
    >>> from repro.engine import BaselineStrategy, QueryExecutor
    >>> from repro.datagen.fixtures import figure1_network
    >>> executor = QueryExecutor(BaselineStrategy(figure1_network()))
    >>> result = executor.execute(
    ...     'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    ...     'JUDGED BY author.paper.venue TOP 3;')
    >>> len(result) <= 3
    True
    """

    COMBINE_MODES = ("score", "rank", "connectivity")

    def __init__(
        self,
        strategy: MaterializationStrategy,
        measure: Measure | str = "netout",
        *,
        combine: str = "score",
        collect_stats: bool = True,
        resilience: "ResiliencePolicy | None" = None,
    ) -> None:
        self.strategy = strategy
        self.network = strategy.network
        self.measure = get_measure(measure) if isinstance(measure, str) else measure
        if combine not in self.COMBINE_MODES:
            raise ExecutionError(
                f"unknown combine mode {combine!r}; expected one of "
                f"{self.COMBINE_MODES}"
            )
        self.combine = combine
        self.collect_stats = collect_stats
        self.resilience = resilience

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self, query: str | Query, *, deadline: Deadline | None = None
    ) -> OutlierResult:
        """Run ``query`` (text or AST) and return the ranked result.

        Parameters
        ----------
        deadline:
            Optional explicit per-call deadline; defaults to a fresh one
            from the executor's resilience policy (when configured).  The
            deadline is enforced cooperatively inside materialization and
            scoring loops and raises
            :class:`~repro.exceptions.DeadlineExceededError` on overrun —
            unless the policy allows partial results and at least one
            feature meta-path was already scored, in which case the partial
            ranking is returned with ``degraded=True``.
        """
        started = time.perf_counter()
        ast = parse_query(query) if isinstance(query, str) else query
        validated = validate_query(self.network.schema, ast)
        stats = ExecutionStats() if self.collect_stats else None
        if deadline is None and self.resilience is not None:
            deadline = self.resilience.deadline()

        with deadline_scope(deadline):
            evaluator = SetEvaluator(self.strategy, stats)
            member_type, candidates = evaluator.evaluate(ast.candidates)
            if ast.reference is not None:
                _, reference = evaluator.evaluate(ast.reference)
            else:
                reference = list(candidates)
            if not candidates:
                raise ExecutionError("the candidate set is empty")
            if not reference:
                raise ExecutionError("the reference set is empty")

            scores, per_feature, partial_reason = self._score(
                validated, candidates, reference, stats
            )

        names = self.network.vertex_names(member_type)
        vertex_ids = [VertexId(member_type, index) for index in candidates]
        score_map = {
            vertex: float(score) for vertex, score in zip(vertex_ids, scores)
        }
        name_map = {vertex: names[vertex.index] for vertex in score_map}
        feature_scores = None
        if per_feature is not None:
            feature_scores = {
                path_text: {
                    vertex: float(value)
                    for vertex, value in zip(vertex_ids, values)
                }
                for path_text, values in per_feature.items()
            }
        if stats is not None:
            stats.wall_seconds = time.perf_counter() - started
        degradation_reason = self._degradation_reason(partial_reason)
        if degradation_reason is not None:
            warnings.warn(
                DegradedResultWarning(f"degraded result: {degradation_reason}"),
                stacklevel=2,
            )
        return OutlierResult.from_scores(
            score_map,
            name_map,
            top_k=ast.top_k,
            reference_count=len(reference),
            measure=self.measure.name,
            stats=stats,
            feature_scores=feature_scores,
            degraded=degradation_reason is not None,
            degradation_reason=degradation_reason,
        )

    def _degradation_reason(self, partial_reason: str | None) -> str | None:
        """Combine strategy-ladder demotions and partial scoring into one reason."""
        parts = []
        strategy_reason = getattr(self.strategy, "degradation_reason", None)
        if getattr(self.strategy, "degraded", False) and strategy_reason:
            parts.append(strategy_reason)
        if partial_reason is not None:
            parts.append(partial_reason)
        return "; ".join(parts) if parts else None

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score(
        self,
        validated: ValidatedQuery,
        candidates: list[int],
        reference: list[int],
        stats: ExecutionStats | None,
    ) -> tuple[np.ndarray, dict[str, np.ndarray] | None, str | None]:
        """Combine Ω across the query's feature meta-paths (see ``combine``).

        Returns the combined scores; for multi-feature score/rank queries,
        the per-path raw Ω vectors (the explanation payload); and a
        partial-result reason when the deadline expired after some — but
        not all — feature meta-paths were scored (``None`` otherwise).
        """
        features = validated.features
        if self.combine == "connectivity" and len(features) > 1:
            combined = self._score_combined_connectivity(
                validated, candidates, reference, stats
            )
            return combined, None, None

        allow_partial = (
            self.resilience.allow_partial if self.resilience is not None else False
        )
        scored: list[tuple[WeightedMetaPath, np.ndarray]] = []
        partial_reason: str | None = None
        for feature in features:
            try:
                check_deadline("feature scoring")
                scores = self._score_single_path(feature, candidates, reference, stats)
            except DeadlineExceededError as error:
                # The ladder handles *strategy* failures; the deadline is
                # different — scoring stops, but feature meta-paths already
                # scored still form a valid (partial) ranking.
                if allow_partial and scored:
                    partial_reason = (
                        f"deadline expired after {len(scored)} of "
                        f"{len(features)} feature meta-paths ({error})"
                    )
                    break
                raise
            scored.append((feature, scores))

        total_weight = sum(feature.weight for feature, _ in scored)
        combined = np.zeros(len(candidates), dtype=float)
        per_feature: dict[str, np.ndarray] = {}
        for feature, scores in scored:
            per_feature[str(feature.path)] = scores
            if self.combine == "rank" and len(scored) > 1:
                # Average of per-path ranks: 1 = most outlying.  Ties get
                # the same (minimum) rank via double argsort on (score, idx).
                order = np.lexsort((np.arange(len(scores)), scores))
                ranks = np.empty(len(scores), dtype=float)
                ranks[order] = np.arange(1, len(scores) + 1)
                combined += (feature.weight / total_weight) * ranks
            else:
                combined += (feature.weight / total_weight) * scores
        if len(scored) < 2:
            return combined, None, partial_reason
        return combined, per_feature, partial_reason

    def _score_combined_connectivity(
        self,
        validated: ValidatedQuery,
        candidates: list[int],
        reference: list[int],
        stats: ExecutionStats | None,
    ) -> np.ndarray:
        """Score once over √weight-scaled, concatenated neighbor vectors.

        With φ' = [√w₁·φ₁ | √w₂·φ₂ | …], inner products become the weighted
        sum of per-path connectivities: χ'(a, b) = Σ_p w_p χ_p(a, b) — the
        "redefine the connectivity" option of Section 5.1.
        """
        candidate_blocks = []
        reference_blocks = []
        for feature in validated.features:
            scale = np.sqrt(feature.weight)
            phi_candidates = self.strategy.neighbor_matrix(
                feature.path, candidates, stats
            )
            candidate_blocks.append(phi_candidates * scale)
            if reference == candidates:
                reference_blocks.append(candidate_blocks[-1])
            else:
                phi_reference = self.strategy.neighbor_matrix(
                    feature.path, reference, stats
                )
                reference_blocks.append(phi_reference * scale)
        phi_candidates = sparse.hstack(candidate_blocks, format="csr")
        phi_reference = sparse.hstack(reference_blocks, format="csr")
        if stats is None:
            return self.measure.score(phi_candidates, phi_reference)
        with stats.timer.phase(PHASE_SCORING):
            return self.measure.score(phi_candidates, phi_reference)

    def _score_single_path(
        self,
        feature: WeightedMetaPath,
        candidates: list[int],
        reference: list[int],
        stats: ExecutionStats | None,
    ) -> np.ndarray:
        phi_candidates = self.strategy.neighbor_matrix(feature.path, candidates, stats)
        if reference == candidates:
            phi_reference: sparse.csr_matrix = phi_candidates
        else:
            phi_reference = self.strategy.neighbor_matrix(feature.path, reference, stats)
        check_deadline("outlierness scoring")
        if stats is None:
            return self.measure.score(phi_candidates, phi_reference)
        with stats.timer.phase(PHASE_SCORING):
            return self.measure.score(phi_candidates, phi_reference)

    # ------------------------------------------------------------------
    # Batch helper for the efficiency study
    # ------------------------------------------------------------------
    def execute_many(
        self,
        queries: list[str | Query],
        *,
        skip_failures: bool = False,
    ) -> BatchExecution:
        """Execute a query set and return results, aggregated stats, errors.

        One failing query never aborts the batch: execution-time failures —
        empty candidate sets, anchors that no longer exist (dead query-log
        entries), expired deadlines — are collected into the returned
        :class:`BatchExecution`'s ``errors`` mapping, keyed by the query's
        index in ``queries``, while every other query still runs.  Syntax
        and semantic errors (:class:`~repro.exceptions.QueryError`) still
        raise immediately: a malformed workload is a caller bug, not a data
        artifact.

        The return value unpacks as the historical ``(results, stats)``
        pair; ``errors`` rides along as an attribute.

        Parameters
        ----------
        skip_failures:
            Retained for backward compatibility; failures are now always
            collected rather than raised, so this flag only documents
            intent at call sites that predate :class:`BatchExecution`.
        """
        del skip_failures  # historical flag; failures are always collected
        results: list[OutlierResult] = []
        errors: dict[int, ReproError] = {}
        aggregate = ExecutionStats(queries=0)
        for position, query in enumerate(queries):
            try:
                result = self.execute(query)
            except QueryError:
                raise
            except ReproError as error:
                errors[position] = error
                continue
            results.append(result)
            if result.stats is not None:
                aggregate.merge(result.stats)
        return BatchExecution(results, aggregate, errors)
