"""Progressive (anytime) query execution with confidence intervals.

Section 8 of the paper sketches this extension: *"the system could find the
approximate top-k outliers, with confidences, while the query is being
processed so that users can determine whether to continue processing the
query."*

For an additive measure (sum-aggregated NetOut, ΩPathSim, ΩCosSim), a
candidate's final score is the sum of independent per-reference
contributions.  Processing the reference set in random order therefore
yields, after seeing a fraction ``f`` of it, an unbiased estimate of the
final score — ``|Sr| · mean(contributions seen)`` — with a CLT confidence
interval from the running contribution variance.

:class:`ProgressiveQueryExecutor.stream` yields a
:class:`ProgressiveSnapshot` after every chunk; :meth:`execute` runs the
stream and can stop early once the provisional top-k is *stable*: every
inside-candidate's upper bound is below every outside-candidate's lower
bound at the requested confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.measures import Measure, get_measure
from repro.core.results import OutlierResult
from repro.engine.evaluator import SetEvaluator
from repro.engine.strategies import MaterializationStrategy
from repro.exceptions import ExecutionError, MeasureError
from repro.hin.network import VertexId
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.semantics import validate_query
from repro.utils.rng import ensure_rng

__all__ = ["ProgressiveSnapshot", "ProgressiveQueryExecutor"]

# Two-sided normal quantiles for the supported confidence levels.
_Z_VALUES = {0.8: 1.2816, 0.9: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    z = _Z_VALUES.get(round(confidence, 4))
    if z is None:
        raise MeasureError(
            f"unsupported confidence {confidence}; choose one of "
            f"{sorted(_Z_VALUES)}"
        )
    return z


@dataclass
class ProgressiveSnapshot:
    """State of a progressive execution after one chunk of the reference set.

    Attributes
    ----------
    processed, total:
        Reference vertices consumed so far / overall.
    estimates:
        Projected final Ω per candidate (unbiased under random reference
        order).  Exact once ``processed == total``.
    half_widths:
        CLT half-widths of the projected scores at the executor's
        confidence level (zeros when everything is processed).
    top_k:
        Provisional top-k candidate vertices, most outlying first.
    stable:
        True when the top-k membership cannot change at the confidence
        level (every inside upper bound < every outside lower bound).
    """

    processed: int
    total: int
    estimates: dict[VertexId, float]
    half_widths: dict[VertexId, float]
    top_k: list[VertexId]
    stable: bool

    @property
    def fraction(self) -> float:
        return self.processed / self.total if self.total else 1.0

    @property
    def complete(self) -> bool:
        return self.processed >= self.total


class ProgressiveQueryExecutor:
    """Anytime executor: stream provisional top-k results with confidence.

    Parameters
    ----------
    strategy:
        Materialization strategy (Baseline / PM / SPM).
    measure:
        An *additive* measure (``is_additive``); defaults to NetOut.
    chunk_size:
        Reference vertices consumed per snapshot.
    confidence:
        Confidence level for intervals and the stability test
        (0.8 / 0.9 / 0.95 / 0.99).
    seed:
        Seed for the random reference permutation (determinism).
    """

    def __init__(
        self,
        strategy: MaterializationStrategy,
        measure: Measure | str = "netout",
        *,
        chunk_size: int = 64,
        confidence: float = 0.95,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.strategy = strategy
        self.network = strategy.network
        self.measure = get_measure(measure) if isinstance(measure, str) else measure
        if not self.measure.is_additive:
            raise MeasureError(
                f"progressive execution needs an additive measure; "
                f"{self.measure.name!r} is not"
            )
        if chunk_size < 1:
            raise ExecutionError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.confidence = confidence
        self._z = _z_for(confidence)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def stream(self, query: str | Query) -> Iterator[ProgressiveSnapshot]:
        """Yield a snapshot after each processed reference chunk.

        Only single-feature queries are supported (the natural anytime
        setting; multi-path queries can be streamed per path by the caller).
        """
        ast = parse_query(query) if isinstance(query, str) else query
        validated = validate_query(self.network.schema, ast)
        if len(validated.features) != 1:
            raise ExecutionError(
                "progressive execution supports exactly one feature meta-path"
            )
        feature = validated.features[0]

        evaluator = SetEvaluator(self.strategy)
        member_type, candidates = evaluator.evaluate(ast.candidates)
        if ast.reference is not None:
            __, reference = evaluator.evaluate(ast.reference)
        else:
            reference = list(candidates)
        if not candidates:
            raise ExecutionError("the candidate set is empty")
        if not reference:
            raise ExecutionError("the reference set is empty")

        phi_candidates = self.strategy.neighbor_matrix(feature.path, candidates)
        order = list(np.array(reference)[self._rng.permutation(len(reference))])
        total = len(order)
        count = len(candidates)
        vertex_ids = [VertexId(member_type, index) for index in candidates]

        running_sum = np.zeros(count)
        running_sumsq = np.zeros(count)
        processed = 0
        while processed < total:
            chunk = order[processed:processed + self.chunk_size]
            phi_chunk = self.strategy.neighbor_matrix(feature.path, chunk)
            contributions = self.measure.contribution_matrix(
                phi_candidates, phi_chunk
            )
            running_sum += contributions.sum(axis=1)
            running_sumsq += (contributions ** 2).sum(axis=1)
            processed += len(chunk)
            yield self._snapshot(
                vertex_ids,
                running_sum,
                running_sumsq,
                processed,
                total,
                ast.top_k,
            )

    def _snapshot(
        self,
        vertex_ids: list[VertexId],
        running_sum: np.ndarray,
        running_sumsq: np.ndarray,
        processed: int,
        total: int,
        top_k: int,
    ) -> ProgressiveSnapshot:
        means = running_sum / processed
        estimates = means * total
        if processed >= total:
            half = np.zeros_like(estimates)
        else:
            variances = np.maximum(running_sumsq / processed - means ** 2, 0.0)
            # Finite-population correction: the estimate is exact at f = 1.
            correction = max(0.0, (total - processed) / max(total - 1, 1))
            standard_errors = np.sqrt(variances / processed * correction)
            half = self._z * standard_errors * total

        order = np.lexsort((np.arange(len(estimates)), estimates))
        k = min(top_k, len(order))
        inside, outside = order[:k], order[k:]
        if processed >= total or len(outside) == 0:
            stable = True
        else:
            worst_inside = (estimates[inside] + half[inside]).max()
            best_outside = (estimates[outside] - half[outside]).min()
            stable = bool(worst_inside < best_outside)

        return ProgressiveSnapshot(
            processed=processed,
            total=total,
            estimates={v: float(e) for v, e in zip(vertex_ids, estimates)},
            half_widths={v: float(h) for v, h in zip(vertex_ids, half)},
            top_k=[vertex_ids[i] for i in inside],
            stable=stable,
        )

    # ------------------------------------------------------------------
    # One-shot convenience
    # ------------------------------------------------------------------
    def execute(
        self,
        query: str | Query,
        *,
        early_stop: bool = True,
        min_fraction: float = 0.1,
    ) -> tuple[OutlierResult, ProgressiveSnapshot]:
        """Run the stream and return ``(result, final snapshot)``.

        With ``early_stop`` the run halts at the first stable snapshot past
        ``min_fraction`` of the reference set; scores in the result are the
        projected estimates at that point (exact when the full set was
        processed).
        """
        ast = parse_query(query) if isinstance(query, str) else query
        last: ProgressiveSnapshot | None = None
        for snapshot in self.stream(ast):
            last = snapshot
            if early_stop and snapshot.stable and snapshot.fraction >= min_fraction:
                break
        assert last is not None  # stream always yields for non-empty sets
        name_map = {
            vertex: self.network.vertex_name(vertex) for vertex in last.estimates
        }
        result = OutlierResult.from_scores(
            last.estimates,
            name_map,
            top_k=ast.top_k,
            reference_count=last.total,
            measure=self.measure.name,
        )
        return result, last
