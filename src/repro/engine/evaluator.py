"""Evaluation of set expressions into concrete vertex sets.

The evaluator turns the FROM / COMPARED TO expressions of a validated query
into sorted vertex-index lists.  Anchored chains and WHERE walks are
materialized through the active
:class:`~repro.engine.strategies.MaterializationStrategy`, so set retrieval
benefits from PM/SPM indexing exactly as Section 6.2 describes ("multiple
steps in the query processing benefit, including the retrieval of candidate
set Sc and reference set Sr").
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np
from scipy import sparse

from repro.engine.deadline import check_deadline
from repro.engine.stats import ExecutionStats
from repro.engine.strategies import MaterializationStrategy
from repro.exceptions import ExecutionError
from repro.hin.network import VertexId
from repro.metapath.metapath import MetaPath
from repro.query.ast import (
    AttributeComparison,
    BooleanCondition,
    Chain,
    Comparison,
    Condition,
    FilteredSet,
    NotCondition,
    SetExpression,
    SetOperation,
)

__all__ = ["SetEvaluator"]

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    "!=": operator.ne,
}


class SetEvaluator:
    """Evaluates :class:`~repro.query.ast.SetExpression` trees.

    Parameters
    ----------
    strategy:
        Materialization strategy used for anchored walks and WHERE walks.
    stats:
        Optional statistics sink; phase times accumulate there.
    """

    def __init__(
        self,
        strategy: MaterializationStrategy,
        stats: ExecutionStats | None = None,
    ) -> None:
        self.strategy = strategy
        self.network = strategy.network
        self.stats = stats

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, expression: SetExpression) -> tuple[str, list[int]]:
        """Evaluate ``expression`` to ``(member_type, sorted vertex indices)``.

        Raises
        ------
        VertexNotFoundError
            When a chain anchors at a name that does not exist.
        ExecutionError
            On structurally invalid expressions that slipped past semantic
            validation (defensive).
        """
        # One cooperative check per set-expression node: set retrieval can
        # walk large frontiers, and block-granular materialization checks
        # alone would be too sparse on small expressions.
        check_deadline("set evaluation")
        if isinstance(expression, Chain):
            return self._evaluate_chain(expression)
        if isinstance(expression, SetOperation):
            return self._evaluate_operation(expression)
        if isinstance(expression, FilteredSet):
            member_type, members = self.evaluate(expression.base)
            if expression.where is not None:
                members = self._filter(members, member_type, expression.where)
            return member_type, members
        raise ExecutionError(f"unknown set expression node {expression!r}")

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def _evaluate_chain(self, chain: Chain) -> tuple[str, list[int]]:
        member_type = chain.member_type
        if chain.anchor is not None:
            anchor = self.network.find_vertex(chain.types[0], chain.anchor)
            if len(chain.types) == 1:
                members = [anchor.index]
            else:
                path = MetaPath(chain.types)
                row = self.strategy.neighbor_row(path, anchor.index, self.stats)
                members = sorted(int(j) for j in row.indices)
        else:
            members = self._evaluate_unanchored(chain.types)
        if chain.where is not None:
            members = self._filter(members, member_type, chain.where)
        return member_type, members

    def _evaluate_unanchored(self, types: tuple[str, ...]) -> list[int]:
        """Members reachable along ``types`` from *any* start vertex.

        A bare type selects every vertex of that type; a longer chain keeps
        the member-type vertices with at least one path instance from some
        start vertex (non-zero columns of the count matrix, computed as a
        ones-vector pushed through the adjacency chain).
        """
        first_count = self.network.num_vertices(types[0])
        if len(types) == 1:
            return list(range(first_count))
        frontier = sparse.csr_matrix(np.ones((1, first_count)))
        for left, right in zip(types, types[1:]):
            frontier = frontier @ self.network.adjacency(left, right)
        return sorted(int(j) for j in frontier.tocsr().indices)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def _evaluate_operation(self, operation: SetOperation) -> tuple[str, list[int]]:
        left_type, left_members = self.evaluate(operation.left)
        right_type, right_members = self.evaluate(operation.right)
        if left_type != right_type:
            raise ExecutionError(
                f"{operation.operator} operands have different member types: "
                f"{left_type!r} vs {right_type!r}"
            )
        left_set, right_set = set(left_members), set(right_members)
        if operation.operator == "UNION":
            combined = left_set | right_set
        elif operation.operator == "INTERSECT":
            combined = left_set & right_set
        elif operation.operator == "EXCEPT":
            combined = left_set - right_set
        else:  # pragma: no cover - parser restricts operators
            raise ExecutionError(f"unknown set operator {operation.operator!r}")
        return left_type, sorted(combined)

    # ------------------------------------------------------------------
    # WHERE filters
    # ------------------------------------------------------------------
    def _filter(
        self,
        members: list[int],
        member_type: str,
        condition: Condition,
    ) -> list[int]:
        mask = self._condition_mask(members, member_type, condition)
        return [member for member, keep in zip(members, mask) if keep]

    def _condition_mask(
        self,
        members: list[int],
        member_type: str,
        condition: Condition,
    ) -> np.ndarray:
        if isinstance(condition, Comparison):
            return self._comparison_mask(members, member_type, condition)
        if isinstance(condition, AttributeComparison):
            return self._attribute_mask(members, member_type, condition)
        if isinstance(condition, BooleanCondition):
            left = self._condition_mask(members, member_type, condition.left)
            right = self._condition_mask(members, member_type, condition.right)
            return (left & right) if condition.operator == "AND" else (left | right)
        if isinstance(condition, NotCondition):
            return ~self._condition_mask(members, member_type, condition.operand)
        raise ExecutionError(f"unknown condition node {condition!r}")

    def _comparison_mask(
        self,
        members: list[int],
        member_type: str,
        comparison: Comparison,
    ) -> np.ndarray:
        path = MetaPath((member_type,) + comparison.steps)
        compare = _COMPARATORS.get(comparison.operator)
        if compare is None:  # pragma: no cover - parser restricts operators
            raise ExecutionError(f"unknown comparison operator {comparison.operator!r}")
        # One bulk materialization for every member: COUNT is the per-row
        # stored-element count (indptr differences), PATHS the per-row sum.
        block = self.strategy.neighbor_matrix(path, members, self.stats)
        if comparison.function == "COUNT":
            values = np.diff(block.indptr).astype(float)
        else:  # PATHS: total instance count, ‖φ‖₁.
            values = np.asarray(block.sum(axis=1)).ravel().astype(float)
        return np.fromiter(
            (compare(value, comparison.value) for value in values),
            dtype=bool,
            count=len(members),
        )

    def _attribute_mask(
        self,
        members: list[int],
        member_type: str,
        comparison: AttributeComparison,
    ) -> np.ndarray:
        """Evaluate ``alias.attribute <op> literal`` per member vertex.

        NULL semantics: a missing attribute, or one whose type does not
        match the literal (string vs numeric), fails the predicate.
        """
        compare = _COMPARATORS.get(comparison.operator)
        if compare is None:  # pragma: no cover - parser restricts operators
            raise ExecutionError(f"unknown comparison operator {comparison.operator!r}")
        expect_string = isinstance(comparison.value, str)
        mask = np.zeros(len(members), dtype=bool)
        for position, member in enumerate(members):
            vertex = self.network.vertex(VertexId(member_type, member))
            value = vertex.attributes.get(comparison.attribute)
            if value is None:
                continue
            if expect_string:
                if not isinstance(value, str):
                    continue
                mask[position] = compare(value, comparison.value)
            else:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                mask[position] = compare(float(value), comparison.value)
        return mask
