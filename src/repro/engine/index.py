"""Pre-materialized length-2 meta-path indexes (paper Section 6.2).

The index stores, per length-2 meta-path ``P``, either:

* the **full** count matrix ``M_P`` (PM: every vertex's row retrievable in
  O(1)), or
* a **partial** row store ``{vertex index: φ_P(vertex)}`` for a selected
  vertex subset (SPM).

Index size is accounted in bytes under a conventional CSR storage model
(8-byte values, 4-byte column indices, 8-byte row pointers) — the quantity
Figure 5(b) reports.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy import sparse

from repro import faultinject
from repro.engine.deadline import check_deadline
from repro.exceptions import ExecutionError
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.storage import (
    ArrayStore,
    RamArrayStore,
    csr_from_buffers,
    is_store_backed,
    spill_csr,
)
from repro.metapath.materialize import materialize, materialize_row
from repro.metapath.metapath import MetaPath
from repro.hin.network import VertexId
from repro.utils.sparsetools import csr_storage_bytes, sparse_row_bytes

__all__ = [
    "MetaPathIndex",
    "build_pm_index",
    "build_pm_index_blocked",
    "build_spm_index",
    "build_spm_index_bounded",
    "build_spm_index_blocked",
    "DEFAULT_BUILD_BLOCK_ROWS",
]

#: Default row-block width of the out-of-core builders: large enough that
#: per-block Python overhead vanishes against the sparse products, small
#: enough that one block of a dense-ish product stays tens of MB.
DEFAULT_BUILD_BLOCK_ROWS = 8192


def _mark_canonical(matrix: sparse.csr_matrix) -> None:
    """Mark a reattached CSR matrix as having canonical format.

    Export canonicalizes every matrix before packing, so the flags are
    truthful — setting them up front stops scipy from ever attempting an
    in-place ``sort_indices`` on read-only shared-memory buffers.
    """
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True


class MetaPathIndex:
    """Row-retrievable store of pre-materialized meta-path count matrices.

    Lookups return 1 x n CSR rows or ``None`` when the row is not stored —
    the strategy layer decides whether to fall back to traversal.
    """

    def __init__(self, store: "ArrayStore | None" = None) -> None:
        # Optional storage tier (repro.hin.storage): when set, stored
        # matrices are spilled to the store's read-only memmap files and
        # the in-RAM copies dropped — the "mmap" leg of the
        # storage={ram,mmap} switch.  Matrices whose buffers already live
        # in a store (the out-of-core builders hand those in) are adopted
        # as-is.
        self._store = store
        self._spill_sequence = 0
        self._full: dict[MetaPath, sparse.csr_matrix] = {}
        self._partial: dict[MetaPath, dict[int, sparse.csr_matrix]] = {}
        # Lazily-built bulk view of a partial store: (stacked row matrix,
        # vertex index -> stacked row position as a dense inverse array).
        # Invalidated on store_row.
        self._partial_stacked: dict[
            MetaPath, tuple[sparse.csr_matrix, np.ndarray]
        ] = {}
        # Lazily-built per-path boolean coverage masks (vertex index ->
        # stored?), keyed by (path, width).  Invalidated on store calls.
        self._coverage: dict[tuple[MetaPath, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _spill(self, matrix: sparse.csr_matrix) -> sparse.csr_matrix:
        if self._store is None or is_store_backed(matrix):
            return matrix
        prefix = f"index:spill:{self._spill_sequence}"
        self._spill_sequence += 1
        return spill_csr(self._store, prefix, matrix)

    def store_full(self, path: MetaPath, matrix: sparse.csr_matrix) -> None:
        """Store the complete count matrix of ``path``."""
        self._full[path] = self._spill(matrix.tocsr())
        # A full matrix supersedes any partial rows for the same path.
        self._partial.pop(path, None)
        self._partial_stacked.pop(path, None)
        self._invalidate_coverage(path)

    def store_row(self, path: MetaPath, vertex_index: int, row: sparse.spmatrix) -> None:
        """Store one vertex's row of ``path`` (SPM-style partial coverage)."""
        if path in self._full:
            raise ExecutionError(
                f"meta-path {path} already has a full matrix; refusing to "
                "shadow it with partial rows"
            )
        csr = row.tocsr()
        if csr.shape[0] != 1:
            raise ExecutionError(
                f"expected a single row for {path}, got shape {csr.shape}"
            )
        self._partial.setdefault(path, {})[vertex_index] = csr
        self._partial_stacked.pop(path, None)
        self._invalidate_coverage(path)

    @staticmethod
    def _rows_from_stacked(
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        vertices: np.ndarray,
        width: int,
    ) -> dict[int, sparse.csr_matrix]:
        """Per-vertex 1 x width row views over stacked CSR buffers (zero-copy)."""
        store: dict[int, sparse.csr_matrix] = {}
        for slot, vertex in enumerate(vertices):
            start, stop = int(indptr[slot]), int(indptr[slot + 1])
            row = sparse.csr_matrix((1, width), dtype=data.dtype)
            row.data = data[start:stop]
            row.indices = indices[start:stop]
            row.indptr = np.array([0, stop - start], dtype=indptr.dtype)
            _mark_canonical(row)
            store[int(vertex)] = row
        return store

    def install_partial_stacked(
        self,
        path: MetaPath,
        vertices: "np.ndarray | list[int]",
        stacked: sparse.csr_matrix,
    ) -> None:
        """Adopt a pre-stacked partial store: row ``i`` belongs to ``vertices[i]``.

        ``stacked`` must already be canonical (sorted, duplicate-free) —
        the out-of-core SPM builder canonicalizes each block before
        spilling, and the buffers may be read-only memmap pages scipy must
        never sort in place.  When the index has a storage tier the stacked
        buffers are spilled through it; individual rows become zero-copy
        views into the (possibly file-backed) stack.
        """
        if path in self._full:
            raise ExecutionError(
                f"meta-path {path} already has a full matrix; refusing to "
                "shadow it with partial rows"
            )
        csr = stacked.tocsr()
        _mark_canonical(csr)
        stored = np.asarray(vertices, dtype=np.int64)
        if csr.shape[0] != stored.size:
            raise ExecutionError(
                f"stacked partial store for {path} has {csr.shape[0]} rows "
                f"but {stored.size} vertex indices"
            )
        csr = self._spill(csr)
        self._partial[path] = self._rows_from_stacked(
            csr.data, csr.indices, csr.indptr, stored, csr.shape[1]
        )
        if stored.size:
            inverse = np.full(int(stored.max()) + 1, -1, dtype=np.int64)
            inverse[stored] = np.arange(stored.size, dtype=np.int64)
        else:
            inverse = np.empty(0, dtype=np.int64)
        self._partial_stacked[path] = (csr, inverse)
        self._invalidate_coverage(path)

    def _invalidate_coverage(self, path: MetaPath) -> None:
        for key in [key for key in self._coverage if key[0] == path]:
            del self._coverage[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, path: MetaPath, vertex_index: int) -> sparse.csr_matrix | None:
        """The stored row ``φ_path(vertex)`` or ``None`` when absent."""
        full = self._full.get(path)
        if full is not None:
            if not 0 <= vertex_index < full.shape[0]:
                return None
            return full.getrow(vertex_index)
        rows = self._partial.get(path)
        if rows is None:
            return None
        return rows.get(vertex_index)

    def full_matrix(self, path: MetaPath) -> sparse.csr_matrix | None:
        """The complete matrix for ``path`` when fully materialized."""
        return self._full.get(path)

    def has_row(self, path: MetaPath, vertex_index: int) -> bool:
        full = self._full.get(path)
        if full is not None:
            return 0 <= vertex_index < full.shape[0]
        return vertex_index in self._partial.get(path, {})

    def covered_indices(self, path: MetaPath) -> np.ndarray | None:
        """Vertex indices with a stored row of ``path``.

        ``None`` means *every* in-range vertex is covered (a full matrix is
        stored); an empty array means nothing is.  Used by the bulk
        strategies to partition whole request blocks into index hits and
        misses with one vectorized membership test.
        """
        if path in self._full:
            return None
        rows = self._partial.get(path)
        if not rows:
            return np.empty(0, dtype=np.int64)
        return np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))

    def coverage_mask(self, path: MetaPath, width: int) -> np.ndarray | None:
        """Boolean coverage lookup table for ``path`` over ``width`` vertices.

        ``mask[i]`` is True exactly when vertex ``i`` has a stored row;
        ``None`` means a full matrix covers every in-range vertex.  The mask
        is cached until the next store, so block partitioning costs one
        O(block) fancy index instead of a per-block membership sort.
        """
        if path in self._full:
            return None
        key = (path, width)
        mask = self._coverage.get(key)
        if mask is None:
            mask = np.zeros(width, dtype=bool)
            rows = self._partial.get(path)
            if rows:
                mask[np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))] = True
            self._coverage[key] = mask
        return mask

    def gather_rows(
        self, path: MetaPath, vertex_indices: "np.ndarray | list[int]"
    ) -> sparse.csr_matrix:
        """Stacked stored rows of ``path`` for ``vertex_indices`` (all hits).

        One fancy-indexed row gather: full matrices are sliced directly;
        partial stores are stacked once into a bulk matrix (cached until
        the next :meth:`store_row`) and then sliced the same way.

        Raises
        ------
        ExecutionError
            If any requested vertex has no stored row — callers partition
            with :meth:`covered_indices` first.
        """
        positions = np.asarray(vertex_indices, dtype=np.int64)
        full = self._full.get(path)
        if full is not None:
            if positions.size and (
                positions.min() < 0 or positions.max() >= full.shape[0]
            ):
                raise ExecutionError(
                    f"gather_rows: vertex index out of range for {path}"
                )
            return full[positions, :].tocsr()
        stacked = self._partial_stacked.get(path)
        if stacked is None:
            rows = self._partial.get(path, {})
            if rows:
                matrix = sparse.vstack(list(rows.values()), format="csr")
                stored = np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))
                inverse = np.full(int(stored.max()) + 1, -1, dtype=np.int64)
                inverse[stored] = np.arange(stored.size, dtype=np.int64)
            else:
                matrix = sparse.csr_matrix((0, 0), dtype=float)
                inverse = np.empty(0, dtype=np.int64)
            stacked = (matrix, inverse)
            self._partial_stacked[path] = stacked
        matrix, inverse = stacked
        if positions.size and (
            positions.min() < 0 or positions.max() >= inverse.size
        ):
            raise ExecutionError(
                f"gather_rows: no stored row for some vertex of {path}"
            )
        slots = inverse[positions]
        if positions.size and slots.min() < 0:
            raise ExecutionError(
                f"gather_rows: no stored row for some vertex of {path}"
            )
        return matrix[slots, :].tocsr()

    @property
    def paths(self) -> list[MetaPath]:
        """All meta-paths with any stored data, full matrices first."""
        return list(self._full) + [p for p in self._partial if p not in self._full]

    # ------------------------------------------------------------------
    # Flat-buffer export / attach (shared-memory transport)
    # ------------------------------------------------------------------
    def export_arrays(self) -> tuple[dict, dict[str, "np.ndarray"]]:
        """Flatten the index into a manifest plus named numpy arrays.

        The manifest (plain dicts/lists, picklable) records each stored
        matrix's meta-path, kind, and shape; the arrays map carries every
        CSR buffer (``data``/``indices``/``indptr`` per matrix, plus the
        covered-vertex array for partial stores).  Together they are the
        wire form the process-parallel service places in
        ``multiprocessing.shared_memory`` — see :meth:`from_arrays` for the
        zero-copy reattach and :mod:`repro.service.shm` for the transport.

        Partial (SPM) stores are stacked into one CSR per path so a worker
        attaches O(paths) matrices, not O(rows) segments.
        """
        entries: list[dict] = []
        arrays: dict[str, np.ndarray] = {}

        def pack(prefix: str, matrix: sparse.csr_matrix) -> None:
            # Canonicalize in place (no-op when already canonical) so the
            # attach side can mark its read-only views canonical without
            # scipy ever attempting an in-place sort on shared pages.
            matrix.sum_duplicates()
            arrays[f"{prefix}:data"] = matrix.data
            arrays[f"{prefix}:indices"] = matrix.indices
            arrays[f"{prefix}:indptr"] = matrix.indptr

        for position, path in enumerate(
            sorted(self._full, key=lambda p: p.types)
        ):
            matrix = self._full[path]
            prefix = f"index:full:{position}"
            pack(prefix, matrix)
            entries.append(
                {
                    "kind": "full",
                    "types": list(path.types),
                    "shape": [int(s) for s in matrix.shape],
                    "prefix": prefix,
                }
            )
        for position, path in enumerate(
            sorted(self._partial, key=lambda p: p.types)
        ):
            rows = self._partial[path]
            vertices = np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))
            stacked = sparse.vstack(list(rows.values()), format="csr")
            prefix = f"index:partial:{position}"
            pack(prefix, stacked)
            arrays[f"{prefix}:vertices"] = vertices
            entries.append(
                {
                    "kind": "partial",
                    "types": list(path.types),
                    "shape": [int(s) for s in stacked.shape],
                    "prefix": prefix,
                }
            )
        return {"entries": entries}, arrays

    @classmethod
    def from_arrays(
        cls, manifest: dict, arrays: "dict[str, np.ndarray]"
    ) -> "MetaPathIndex":
        """Rebuild an index from :meth:`export_arrays` output, zero-copy.

        Matrix buffers are adopted as-is (no validation pass, no dtype
        cast), so when ``arrays`` holds shared-memory views the rebuilt
        index reads the same physical pages as every other attached
        process.  Content integrity is the transport's job — the service's
        shared segments carry a fingerprint checked on attach.
        """
        index = cls()
        for entry in manifest["entries"]:
            path = MetaPath(tuple(entry["types"]))
            prefix = entry["prefix"]
            data = arrays[f"{prefix}:data"]
            indices = arrays[f"{prefix}:indices"]
            indptr = arrays[f"{prefix}:indptr"]
            shape = tuple(int(s) for s in entry["shape"])
            if entry["kind"] == "full":
                matrix = sparse.csr_matrix(shape, dtype=data.dtype)
                matrix.data, matrix.indices, matrix.indptr = data, indices, indptr
                _mark_canonical(matrix)
                index._full[path] = matrix
            else:
                vertices = arrays[f"{prefix}:vertices"]
                index._partial[path] = cls._rows_from_stacked(
                    data, indices, indptr, vertices, shape[1]
                )
        return index

    def partial_rows(self, path: MetaPath) -> dict[int, sparse.csr_matrix]:
        """The stored rows of a partially materialized path (copy of the map).

        Empty for unknown or fully materialized paths.
        """
        return dict(self._partial.get(path, {}))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total stored bytes under the CSR accounting model."""
        total = 0
        for matrix in self._full.values():
            total += csr_storage_bytes(matrix)
        for rows in self._partial.values():
            for row in rows.values():
                total += sparse_row_bytes(int(row.nnz))
        return total

    def row_count(self) -> int:
        """Number of retrievable rows across all paths."""
        total = sum(matrix.shape[0] for matrix in self._full.values())
        total += sum(len(rows) for rows in self._partial.values())
        return total

    def coverage_summary(self) -> dict:
        """Observability snapshot: what this index stores, per path.

        Plain dicts/ints only (JSON-serializable) so the serving layer can
        embed it in ``/stats`` without further translation.
        """
        per_path = {
            str(path): int(matrix.shape[0])
            for path, matrix in self._full.items()
        }
        per_path.update(
            {str(path): len(rows) for path, rows in self._partial.items()}
        )
        return {
            "rows": self.row_count(),
            "size_bytes": self.size_bytes(),
            "full_paths": len(self._full),
            "partial_paths": len(self._partial),
            "rows_per_path": per_path,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetaPathIndex(full={len(self._full)}, "
            f"partial={len(self._partial)}, bytes={self.size_bytes()})"
        )


def _all_length2_paths(network: HeterogeneousInformationNetwork) -> list[MetaPath]:
    return [MetaPath(types) for types in network.schema.length2_metapaths()]


def build_pm_index(
    network: HeterogeneousInformationNetwork,
    *,
    store: "ArrayStore | None" = None,
) -> MetaPathIndex:
    """Materialize every legal length-2 meta-path in full (PM, §6.2).

    This is the in-core build: each path's full product is formed in RAM
    (and spilled afterwards when ``store`` is set).  For graphs whose
    products do not fit, use :func:`build_pm_index_blocked`, which never
    holds more than one row block.
    """
    index = MetaPathIndex(store=store)
    for path in _all_length2_paths(network):
        faultinject.check("index_build")
        index.store_full(path, materialize(network, path))
    return index


def build_spm_index(
    network: HeterogeneousInformationNetwork,
    selected: Iterable[VertexId],
) -> MetaPathIndex:
    """Materialize length-2 rows only for ``selected`` vertices (SPM, §6.2).

    For each selected vertex, rows are stored for every legal length-2
    meta-path starting at the vertex's type.
    """
    faultinject.check("index_build")
    index = MetaPathIndex()
    paths_by_source: dict[str, list[MetaPath]] = {}
    for path in _all_length2_paths(network):
        paths_by_source.setdefault(path.source, []).append(path)
    for vertex in selected:
        faultinject.check("index_build")
        for path in paths_by_source.get(vertex.type, []):
            row = materialize_row(network, path, vertex)
            index.store_row(path, vertex.index, row)
    return index


def build_spm_index_bounded(
    network: HeterogeneousInformationNetwork,
    ranked_vertices: Iterable[VertexId],
    *,
    max_bytes: int | None = None,
) -> tuple[MetaPathIndex, list[VertexId]]:
    """SPM build with a byte budget: index hottest-first until full.

    ``ranked_vertices`` must be ordered hottest-first (the re-indexer ranks
    by observed query frequency).  Each vertex is admitted all-or-nothing —
    either every legal length-2 row starting at it fits under ``max_bytes``
    and is stored, or the build stops there — so the resulting index never
    has a vertex whose coverage depends on which meta-path a query uses.
    Returns ``(index, indexed_vertices)`` where the list records which
    vertices made the cut, in rank order.
    """
    faultinject.check("index_build")
    index = MetaPathIndex()
    paths_by_source: dict[str, list[MetaPath]] = {}
    for path in _all_length2_paths(network):
        paths_by_source.setdefault(path.source, []).append(path)
    indexed: list[VertexId] = []
    total = 0
    for vertex in ranked_vertices:
        faultinject.check("index_build")
        rows = [
            (path, materialize_row(network, path, vertex))
            for path in paths_by_source.get(vertex.type, [])
        ]
        vertex_bytes = sum(sparse_row_bytes(int(row.nnz)) for _, row in rows)
        if max_bytes is not None and total + vertex_bytes > max_bytes:
            break
        for path, row in rows:
            index.store_row(path, vertex.index, row)
        total += vertex_bytes
        indexed.append(vertex)
    return index, indexed


# ----------------------------------------------------------------------
# Out-of-core (blocked) builders — the million-vertex tier
# ----------------------------------------------------------------------
def _effective_block_rows(
    a1: sparse.csr_matrix,
    a2: sparse.csr_matrix,
    requested: int,
    max_build_memory_mb: "float | None",
) -> int:
    """Shrink the row-block width so one block's product fits the budget.

    The expected non-zeros of one product row is (avg nnz per A1 row) x
    (avg nnz per A2 row); each kept non-zero costs 16 bytes (float64 value
    + int64 column) and transiently about double that while the block is
    canonicalized and appended, hence the 32-byte-per-nnz model.  The
    estimate is deliberately simple — the budget bounds *expected* block
    size; pathological hub rows can still spike one block.
    """
    if requested < 1:
        raise ExecutionError(f"block_rows must be >= 1, got {requested}")
    if max_build_memory_mb is None:
        return requested
    budget_bytes = max(1.0, float(max_build_memory_mb)) * (1 << 20)
    avg1 = a1.nnz / max(1, a1.shape[0])
    avg2 = a2.nnz / max(1, a2.shape[0])
    bytes_per_row = max(1.0, avg1 * avg2) * 32.0
    return int(max(1, min(requested, budget_bytes // bytes_per_row)))


def _blocked_segment_product(
    a1: sparse.csr_matrix,
    a2: sparse.csr_matrix,
    *,
    block_rows: int,
    store: "ArrayStore | None",
    prefix: str,
) -> sparse.csr_matrix:
    """``A1 @ A2`` computed in row blocks, spilling each completed block.

    Peak memory is one block's product (plus the append copy), not the
    whole matrix: a block is formed, canonicalized, its CSR triple
    appended (``indptr`` rebased by the running non-zero count), and
    dropped.  Because CSR matmul is row-wise independent, the concatenated
    rows are exactly the rows of the in-core product — the value buffers
    are byte-identical, which is what keeps scores byte-identical across
    in-core and out-of-core builds.

    Every block passes the ``index_build`` fault point and the cooperative
    deadline, so the out-of-core build honors the same interruption
    machinery as the rest of the engine.
    """
    target = store if store is not None else RamArrayStore()
    rows, width = a1.shape[0], a2.shape[1]
    data_out = target.appender(f"{prefix}:data", np.float64)
    indices_out = target.appender(f"{prefix}:indices", np.int64)
    indptr_out = target.appender(f"{prefix}:indptr", np.int64)
    indptr_out.append(np.zeros(1, dtype=np.int64))
    nnz = 0
    for start in range(0, rows, block_rows):
        faultinject.check("index_build")
        check_deadline("out-of-core index build")
        block = (a1[start:start + block_rows] @ a2).tocsr()
        block.sum_duplicates()
        block.sort_indices()
        data_out.append(block.data.astype(np.float64, copy=False))
        indices_out.append(block.indices.astype(np.int64, copy=False))
        indptr_out.append(block.indptr[1:].astype(np.int64) + nnz)
        nnz += int(block.nnz)
    return csr_from_buffers(
        data_out.finalize(),
        indices_out.finalize(),
        indptr_out.finalize(),
        (rows, width),
    )


def build_pm_index_blocked(
    network: HeterogeneousInformationNetwork,
    *,
    block_rows: int = DEFAULT_BUILD_BLOCK_ROWS,
    max_build_memory_mb: "float | None" = None,
    store: "ArrayStore | None" = None,
    paths: "Iterable[MetaPath] | None" = None,
) -> MetaPathIndex:
    """Out-of-core PM build: every length-2 product streamed in row blocks.

    The million-vertex counterpart of :func:`build_pm_index`: instead of
    forming each full product in RAM, length-2 segment products are
    computed ``block_rows`` rows at a time and each completed block is
    spilled to ``store`` (a :class:`repro.hin.storage.MmapArrayStore` for
    the mmap tier) before the next is formed.  ``max_build_memory_mb``
    shrinks the block width when a product's expected density would blow
    the per-block budget.

    When ``store`` is a persistent mmap store the finished index is
    **published atomically**: array files carry no meaning until the
    store's manifest is committed (written last, via the ``io`` fault
    point), so an interrupted build is invisible to
    :func:`repro.engine.index_io.load_index_mmap`.

    Index contents are byte-identical to the in-core build's (after
    canonicalization) and scores computed from them are byte-identical,
    because blocked CSR products concatenate to exactly the in-core rows.
    """
    index = MetaPathIndex()
    entries: list[dict] = []
    target_paths = sorted(
        paths if paths is not None else _all_length2_paths(network),
        key=lambda p: p.types,
    )
    for position, path in enumerate(target_paths):
        a1 = network.adjacency(path.types[0], path.types[1])
        a2 = network.adjacency(path.types[1], path.types[2])
        effective = _effective_block_rows(a1, a2, block_rows, max_build_memory_mb)
        prefix = f"index:full:{position}"
        matrix = _blocked_segment_product(
            a1, a2, block_rows=effective, store=store, prefix=prefix
        )
        index.store_full(path, matrix)
        entries.append(
            {
                "kind": "full",
                "types": list(path.types),
                "shape": [int(s) for s in matrix.shape],
                "prefix": prefix,
            }
        )
    if store is not None:
        store.commit({"index": {"entries": entries}})
    return index


def _selection_rows(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    vertex_indices: np.ndarray,
) -> sparse.csr_matrix:
    """Rows ``φ_path(v)`` for a batch of source vertices via selection-gather."""
    width = network.num_vertices(path.source)
    count = int(vertex_indices.size)
    product: sparse.csr_matrix = sparse.csr_matrix(
        (
            np.ones(count, dtype=np.float64),
            (np.arange(count, dtype=np.int64), vertex_indices),
        ),
        shape=(count, width),
    )
    for left, right in zip(path.types, path.types[1:]):
        product = product @ network.adjacency(left, right)
    product = product.tocsr()
    product.sum_duplicates()
    product.sort_indices()
    return product


def build_spm_index_blocked(
    network: HeterogeneousInformationNetwork,
    ranked_vertices: Iterable[VertexId],
    *,
    max_bytes: "int | None" = None,
    block_rows: int = DEFAULT_BUILD_BLOCK_ROWS,
    store: "ArrayStore | None" = None,
) -> tuple[MetaPathIndex, list[VertexId]]:
    """Out-of-core SPM build: bounded blocks, same admission as the bounded build.

    Semantically identical to :func:`build_spm_index_bounded` — vertices
    are admitted hottest-first, all-or-nothing, and the build stops at the
    first vertex that does not fit ``max_bytes`` — but rows are computed a
    block at a time with one selection-gather product per (type, path)
    instead of one vector-matrix chain per vertex, and the finished rows
    are stacked per path and spilled to ``store`` instead of held as
    thousands of row objects.  Returns ``(index, indexed_vertices)``.
    """
    faultinject.check("index_build")
    ranked = list(ranked_vertices)
    paths_by_source: dict[str, list[MetaPath]] = {}
    for path in _all_length2_paths(network):
        paths_by_source.setdefault(path.source, []).append(path)

    admitted: list[VertexId] = []
    rows_per_path: dict[MetaPath, list[tuple[int, sparse.csr_matrix]]] = {}
    total = 0
    exhausted = False
    for block_start in range(0, len(ranked), max(1, block_rows)):
        if exhausted:
            break
        block = ranked[block_start:block_start + max(1, block_rows)]
        faultinject.check("index_build")
        check_deadline("out-of-core SPM build")
        by_type: dict[str, list[int]] = {}
        for position, vertex in enumerate(block):
            by_type.setdefault(vertex.type, []).append(position)
        block_rows_map: dict[int, list[tuple[MetaPath, sparse.csr_matrix]]] = {
            position: [] for position in range(len(block))
        }
        for vertex_type, positions in by_type.items():
            indices = np.asarray(
                [block[position].index for position in positions], dtype=np.int64
            )
            for path in paths_by_source.get(vertex_type, []):
                gathered = _selection_rows(network, path, indices)
                for slot, position in enumerate(positions):
                    block_rows_map[position].append(
                        (path, gathered.getrow(slot))
                    )
        for position, vertex in enumerate(block):
            rows = block_rows_map[position]
            vertex_bytes = sum(
                sparse_row_bytes(int(row.nnz)) for _, row in rows
            )
            if max_bytes is not None and total + vertex_bytes > max_bytes:
                exhausted = True
                break
            for path, row in rows:
                rows_per_path.setdefault(path, []).append((vertex.index, row))
            total += vertex_bytes
            admitted.append(vertex)

    index = MetaPathIndex()
    entries: list[dict] = []
    for position, path in enumerate(
        sorted(rows_per_path, key=lambda p: p.types)
    ):
        pairs = rows_per_path[path]
        vertices = np.asarray([vertex for vertex, _ in pairs], dtype=np.int64)
        stacked = sparse.vstack([row for _, row in pairs], format="csr")
        stacked.sum_duplicates()
        stacked.sort_indices()
        if store is not None:
            prefix = f"index:partial:{position}"
            stacked = spill_csr(store, prefix, stacked)
            store.put(f"{prefix}:vertices", vertices)
            entries.append(
                {
                    "kind": "partial",
                    "types": list(path.types),
                    "shape": [int(s) for s in stacked.shape],
                    "prefix": prefix,
                }
            )
        index.install_partial_stacked(path, vertices, stacked)
    if store is not None:
        store.commit({"index": {"entries": entries}})
    return index, admitted
