"""Pre-materialized length-2 meta-path indexes (paper Section 6.2).

The index stores, per length-2 meta-path ``P``, either:

* the **full** count matrix ``M_P`` (PM: every vertex's row retrievable in
  O(1)), or
* a **partial** row store ``{vertex index: φ_P(vertex)}`` for a selected
  vertex subset (SPM).

Index size is accounted in bytes under a conventional CSR storage model
(8-byte values, 4-byte column indices, 8-byte row pointers) — the quantity
Figure 5(b) reports.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy import sparse

from repro import faultinject
from repro.exceptions import ExecutionError
from repro.hin.network import HeterogeneousInformationNetwork
from repro.metapath.materialize import materialize, materialize_row
from repro.metapath.metapath import MetaPath
from repro.hin.network import VertexId
from repro.utils.sparsetools import csr_storage_bytes, sparse_row_bytes

__all__ = [
    "MetaPathIndex",
    "build_pm_index",
    "build_spm_index",
    "build_spm_index_bounded",
]


def _mark_canonical(matrix: sparse.csr_matrix) -> None:
    """Mark a reattached CSR matrix as having canonical format.

    Export canonicalizes every matrix before packing, so the flags are
    truthful — setting them up front stops scipy from ever attempting an
    in-place ``sort_indices`` on read-only shared-memory buffers.
    """
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True


class MetaPathIndex:
    """Row-retrievable store of pre-materialized meta-path count matrices.

    Lookups return 1 x n CSR rows or ``None`` when the row is not stored —
    the strategy layer decides whether to fall back to traversal.
    """

    def __init__(self) -> None:
        self._full: dict[MetaPath, sparse.csr_matrix] = {}
        self._partial: dict[MetaPath, dict[int, sparse.csr_matrix]] = {}
        # Lazily-built bulk view of a partial store: (stacked row matrix,
        # vertex index -> stacked row position as a dense inverse array).
        # Invalidated on store_row.
        self._partial_stacked: dict[
            MetaPath, tuple[sparse.csr_matrix, np.ndarray]
        ] = {}
        # Lazily-built per-path boolean coverage masks (vertex index ->
        # stored?), keyed by (path, width).  Invalidated on store calls.
        self._coverage: dict[tuple[MetaPath, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def store_full(self, path: MetaPath, matrix: sparse.csr_matrix) -> None:
        """Store the complete count matrix of ``path``."""
        self._full[path] = matrix.tocsr()
        # A full matrix supersedes any partial rows for the same path.
        self._partial.pop(path, None)
        self._partial_stacked.pop(path, None)
        self._invalidate_coverage(path)

    def store_row(self, path: MetaPath, vertex_index: int, row: sparse.spmatrix) -> None:
        """Store one vertex's row of ``path`` (SPM-style partial coverage)."""
        if path in self._full:
            raise ExecutionError(
                f"meta-path {path} already has a full matrix; refusing to "
                "shadow it with partial rows"
            )
        csr = row.tocsr()
        if csr.shape[0] != 1:
            raise ExecutionError(
                f"expected a single row for {path}, got shape {csr.shape}"
            )
        self._partial.setdefault(path, {})[vertex_index] = csr
        self._partial_stacked.pop(path, None)
        self._invalidate_coverage(path)

    def _invalidate_coverage(self, path: MetaPath) -> None:
        for key in [key for key in self._coverage if key[0] == path]:
            del self._coverage[key]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, path: MetaPath, vertex_index: int) -> sparse.csr_matrix | None:
        """The stored row ``φ_path(vertex)`` or ``None`` when absent."""
        full = self._full.get(path)
        if full is not None:
            if not 0 <= vertex_index < full.shape[0]:
                return None
            return full.getrow(vertex_index)
        rows = self._partial.get(path)
        if rows is None:
            return None
        return rows.get(vertex_index)

    def full_matrix(self, path: MetaPath) -> sparse.csr_matrix | None:
        """The complete matrix for ``path`` when fully materialized."""
        return self._full.get(path)

    def has_row(self, path: MetaPath, vertex_index: int) -> bool:
        full = self._full.get(path)
        if full is not None:
            return 0 <= vertex_index < full.shape[0]
        return vertex_index in self._partial.get(path, {})

    def covered_indices(self, path: MetaPath) -> np.ndarray | None:
        """Vertex indices with a stored row of ``path``.

        ``None`` means *every* in-range vertex is covered (a full matrix is
        stored); an empty array means nothing is.  Used by the bulk
        strategies to partition whole request blocks into index hits and
        misses with one vectorized membership test.
        """
        if path in self._full:
            return None
        rows = self._partial.get(path)
        if not rows:
            return np.empty(0, dtype=np.int64)
        return np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))

    def coverage_mask(self, path: MetaPath, width: int) -> np.ndarray | None:
        """Boolean coverage lookup table for ``path`` over ``width`` vertices.

        ``mask[i]`` is True exactly when vertex ``i`` has a stored row;
        ``None`` means a full matrix covers every in-range vertex.  The mask
        is cached until the next store, so block partitioning costs one
        O(block) fancy index instead of a per-block membership sort.
        """
        if path in self._full:
            return None
        key = (path, width)
        mask = self._coverage.get(key)
        if mask is None:
            mask = np.zeros(width, dtype=bool)
            rows = self._partial.get(path)
            if rows:
                mask[np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))] = True
            self._coverage[key] = mask
        return mask

    def gather_rows(
        self, path: MetaPath, vertex_indices: "np.ndarray | list[int]"
    ) -> sparse.csr_matrix:
        """Stacked stored rows of ``path`` for ``vertex_indices`` (all hits).

        One fancy-indexed row gather: full matrices are sliced directly;
        partial stores are stacked once into a bulk matrix (cached until
        the next :meth:`store_row`) and then sliced the same way.

        Raises
        ------
        ExecutionError
            If any requested vertex has no stored row — callers partition
            with :meth:`covered_indices` first.
        """
        positions = np.asarray(vertex_indices, dtype=np.int64)
        full = self._full.get(path)
        if full is not None:
            if positions.size and (
                positions.min() < 0 or positions.max() >= full.shape[0]
            ):
                raise ExecutionError(
                    f"gather_rows: vertex index out of range for {path}"
                )
            return full[positions, :].tocsr()
        stacked = self._partial_stacked.get(path)
        if stacked is None:
            rows = self._partial.get(path, {})
            if rows:
                matrix = sparse.vstack(list(rows.values()), format="csr")
                stored = np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))
                inverse = np.full(int(stored.max()) + 1, -1, dtype=np.int64)
                inverse[stored] = np.arange(stored.size, dtype=np.int64)
            else:
                matrix = sparse.csr_matrix((0, 0), dtype=float)
                inverse = np.empty(0, dtype=np.int64)
            stacked = (matrix, inverse)
            self._partial_stacked[path] = stacked
        matrix, inverse = stacked
        if positions.size and (
            positions.min() < 0 or positions.max() >= inverse.size
        ):
            raise ExecutionError(
                f"gather_rows: no stored row for some vertex of {path}"
            )
        slots = inverse[positions]
        if positions.size and slots.min() < 0:
            raise ExecutionError(
                f"gather_rows: no stored row for some vertex of {path}"
            )
        return matrix[slots, :].tocsr()

    @property
    def paths(self) -> list[MetaPath]:
        """All meta-paths with any stored data, full matrices first."""
        return list(self._full) + [p for p in self._partial if p not in self._full]

    # ------------------------------------------------------------------
    # Flat-buffer export / attach (shared-memory transport)
    # ------------------------------------------------------------------
    def export_arrays(self) -> tuple[dict, dict[str, "np.ndarray"]]:
        """Flatten the index into a manifest plus named numpy arrays.

        The manifest (plain dicts/lists, picklable) records each stored
        matrix's meta-path, kind, and shape; the arrays map carries every
        CSR buffer (``data``/``indices``/``indptr`` per matrix, plus the
        covered-vertex array for partial stores).  Together they are the
        wire form the process-parallel service places in
        ``multiprocessing.shared_memory`` — see :meth:`from_arrays` for the
        zero-copy reattach and :mod:`repro.service.shm` for the transport.

        Partial (SPM) stores are stacked into one CSR per path so a worker
        attaches O(paths) matrices, not O(rows) segments.
        """
        entries: list[dict] = []
        arrays: dict[str, np.ndarray] = {}

        def pack(prefix: str, matrix: sparse.csr_matrix) -> None:
            # Canonicalize in place (no-op when already canonical) so the
            # attach side can mark its read-only views canonical without
            # scipy ever attempting an in-place sort on shared pages.
            matrix.sum_duplicates()
            arrays[f"{prefix}:data"] = matrix.data
            arrays[f"{prefix}:indices"] = matrix.indices
            arrays[f"{prefix}:indptr"] = matrix.indptr

        for position, path in enumerate(
            sorted(self._full, key=lambda p: p.types)
        ):
            matrix = self._full[path]
            prefix = f"index:full:{position}"
            pack(prefix, matrix)
            entries.append(
                {
                    "kind": "full",
                    "types": list(path.types),
                    "shape": [int(s) for s in matrix.shape],
                    "prefix": prefix,
                }
            )
        for position, path in enumerate(
            sorted(self._partial, key=lambda p: p.types)
        ):
            rows = self._partial[path]
            vertices = np.fromiter(rows.keys(), dtype=np.int64, count=len(rows))
            stacked = sparse.vstack(list(rows.values()), format="csr")
            prefix = f"index:partial:{position}"
            pack(prefix, stacked)
            arrays[f"{prefix}:vertices"] = vertices
            entries.append(
                {
                    "kind": "partial",
                    "types": list(path.types),
                    "shape": [int(s) for s in stacked.shape],
                    "prefix": prefix,
                }
            )
        return {"entries": entries}, arrays

    @classmethod
    def from_arrays(
        cls, manifest: dict, arrays: "dict[str, np.ndarray]"
    ) -> "MetaPathIndex":
        """Rebuild an index from :meth:`export_arrays` output, zero-copy.

        Matrix buffers are adopted as-is (no validation pass, no dtype
        cast), so when ``arrays`` holds shared-memory views the rebuilt
        index reads the same physical pages as every other attached
        process.  Content integrity is the transport's job — the service's
        shared segments carry a fingerprint checked on attach.
        """
        index = cls()
        for entry in manifest["entries"]:
            path = MetaPath(tuple(entry["types"]))
            prefix = entry["prefix"]
            data = arrays[f"{prefix}:data"]
            indices = arrays[f"{prefix}:indices"]
            indptr = arrays[f"{prefix}:indptr"]
            shape = tuple(int(s) for s in entry["shape"])
            if entry["kind"] == "full":
                matrix = sparse.csr_matrix(shape, dtype=data.dtype)
                matrix.data, matrix.indices, matrix.indptr = data, indices, indptr
                _mark_canonical(matrix)
                index._full[path] = matrix
            else:
                vertices = arrays[f"{prefix}:vertices"]
                width = shape[1]
                store: dict[int, sparse.csr_matrix] = {}
                for slot, vertex in enumerate(vertices):
                    start, stop = int(indptr[slot]), int(indptr[slot + 1])
                    row = sparse.csr_matrix((1, width), dtype=data.dtype)
                    row.data = data[start:stop]
                    row.indices = indices[start:stop]
                    row.indptr = np.array([0, stop - start], dtype=indptr.dtype)
                    _mark_canonical(row)
                    store[int(vertex)] = row
                index._partial[path] = store
        return index

    def partial_rows(self, path: MetaPath) -> dict[int, sparse.csr_matrix]:
        """The stored rows of a partially materialized path (copy of the map).

        Empty for unknown or fully materialized paths.
        """
        return dict(self._partial.get(path, {}))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total stored bytes under the CSR accounting model."""
        total = 0
        for matrix in self._full.values():
            total += csr_storage_bytes(matrix)
        for rows in self._partial.values():
            for row in rows.values():
                total += sparse_row_bytes(int(row.nnz))
        return total

    def row_count(self) -> int:
        """Number of retrievable rows across all paths."""
        total = sum(matrix.shape[0] for matrix in self._full.values())
        total += sum(len(rows) for rows in self._partial.values())
        return total

    def coverage_summary(self) -> dict:
        """Observability snapshot: what this index stores, per path.

        Plain dicts/ints only (JSON-serializable) so the serving layer can
        embed it in ``/stats`` without further translation.
        """
        per_path = {
            str(path): int(matrix.shape[0])
            for path, matrix in self._full.items()
        }
        per_path.update(
            {str(path): len(rows) for path, rows in self._partial.items()}
        )
        return {
            "rows": self.row_count(),
            "size_bytes": self.size_bytes(),
            "full_paths": len(self._full),
            "partial_paths": len(self._partial),
            "rows_per_path": per_path,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetaPathIndex(full={len(self._full)}, "
            f"partial={len(self._partial)}, bytes={self.size_bytes()})"
        )


def _all_length2_paths(network: HeterogeneousInformationNetwork) -> list[MetaPath]:
    return [MetaPath(types) for types in network.schema.length2_metapaths()]


def build_pm_index(network: HeterogeneousInformationNetwork) -> MetaPathIndex:
    """Materialize every legal length-2 meta-path in full (PM, §6.2)."""
    index = MetaPathIndex()
    for path in _all_length2_paths(network):
        faultinject.check("index_build")
        index.store_full(path, materialize(network, path))
    return index


def build_spm_index(
    network: HeterogeneousInformationNetwork,
    selected: Iterable[VertexId],
) -> MetaPathIndex:
    """Materialize length-2 rows only for ``selected`` vertices (SPM, §6.2).

    For each selected vertex, rows are stored for every legal length-2
    meta-path starting at the vertex's type.
    """
    faultinject.check("index_build")
    index = MetaPathIndex()
    paths_by_source: dict[str, list[MetaPath]] = {}
    for path in _all_length2_paths(network):
        paths_by_source.setdefault(path.source, []).append(path)
    for vertex in selected:
        faultinject.check("index_build")
        for path in paths_by_source.get(vertex.type, []):
            row = materialize_row(network, path, vertex)
            index.store_row(path, vertex.index, row)
    return index


def build_spm_index_bounded(
    network: HeterogeneousInformationNetwork,
    ranked_vertices: Iterable[VertexId],
    *,
    max_bytes: int | None = None,
) -> tuple[MetaPathIndex, list[VertexId]]:
    """SPM build with a byte budget: index hottest-first until full.

    ``ranked_vertices`` must be ordered hottest-first (the re-indexer ranks
    by observed query frequency).  Each vertex is admitted all-or-nothing —
    either every legal length-2 row starting at it fits under ``max_bytes``
    and is stored, or the build stops there — so the resulting index never
    has a vertex whose coverage depends on which meta-path a query uses.
    Returns ``(index, indexed_vertices)`` where the list records which
    vertices made the cut, in rank order.
    """
    faultinject.check("index_build")
    index = MetaPathIndex()
    paths_by_source: dict[str, list[MetaPath]] = {}
    for path in _all_length2_paths(network):
        paths_by_source.setdefault(path.source, []).append(path)
    indexed: list[VertexId] = []
    total = 0
    for vertex in ranked_vertices:
        faultinject.check("index_build")
        rows = [
            (path, materialize_row(network, path, vertex))
            for path in paths_by_source.get(vertex.type, [])
        ]
        vertex_bytes = sum(sparse_row_bytes(int(row.nnz)) for _, row in rows)
        if max_bytes is not None and total + vertex_bytes > max_bytes:
            break
        for path, row in rows:
            index.store_row(path, vertex.index, row)
        total += vertex_bytes
        indexed.append(vertex)
    return index, indexed
