"""PathSim meta-path similarity search (Sun, Han, Yan, Yu, Wu — VLDB 2011).

``PathSim(a, b) = 2·|π_Psym(a, b)| / (|π_Psym(a, a)| + |π_Psym(b, b)|)``
for a symmetric meta-path ``Psym``.  The paper's Section 5 contrasts it
with normalized connectivity; we also expose the top-k similarity search
the original PathSim paper performs, both for tests and as a building
block for users.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.connectivity import connectivity, visibility
from repro.exceptions import MeasureError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.materialize import materialize_row, materialize
from repro.metapath.metapath import MetaPath

__all__ = ["pathsim", "pathsim_matrix", "pathsim_top_k"]


def pathsim(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    a: VertexId,
    b: VertexId,
) -> float:
    """PathSim between ``a`` and ``b`` along feature meta-path ``path``.

    ``path`` is the *feature* meta-path ``P``; the similarity is evaluated
    along its symmetric closure ``P·P⁻¹`` (equivalently, on the neighbor
    vectors ``φ_P``).
    """
    if a.type != path.source or b.type != path.source:
        raise MeasureError(
            f"both vertices must have the meta-path source type {path.source!r}"
        )
    phi_a = materialize_row(network, path, a)
    phi_b = materialize_row(network, path, b)
    denominator = visibility(phi_a) + visibility(phi_b)
    if denominator == 0.0:
        return 0.0
    return 2.0 * connectivity(phi_a, phi_b) / denominator


def pathsim_matrix(
    phi: sparse.spmatrix | np.ndarray,
) -> np.ndarray:
    """Dense pairwise PathSim matrix over stacked neighbor vectors.

    Entry ``(i, j)`` is PathSim between row i and row j.  Rows with zero
    visibility have similarity 0 with everything (including themselves).
    """
    matrix = sparse.csr_matrix(phi) if not sparse.issparse(phi) else phi.tocsr()
    chi = np.asarray((matrix @ matrix.T).todense(), dtype=float)
    vis = chi.diagonal().copy()
    denominators = vis[:, None] + vis[None, :]
    result = np.zeros_like(chi)
    nonzero = denominators > 0
    result[nonzero] = 2.0 * chi[nonzero] / denominators[nonzero]
    return result


def pathsim_top_k(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    query: VertexId,
    k: int = 10,
    *,
    include_self: bool = False,
) -> list[tuple[VertexId, float]]:
    """Top-k most PathSim-similar vertices to ``query`` along ``path``.

    This is the VLDB 2011 similarity-search task.  Ties break by vertex
    index for determinism.
    """
    if query.type != path.source:
        raise MeasureError(
            f"query vertex must have the meta-path source type {path.source!r}"
        )
    if k <= 0:
        raise MeasureError(f"k must be positive, got {k}")
    count_matrix = materialize(network, path)
    phi_query = count_matrix.getrow(query.index)
    vis_query = visibility(phi_query)
    # χ(query, ·) for every vertex of the source type in one product.
    chi = np.asarray((count_matrix @ phi_query.T).todense()).ravel()
    vis_all = np.asarray(count_matrix.multiply(count_matrix).sum(axis=1)).ravel()
    denominators = vis_all + vis_query
    scores = np.zeros_like(chi)
    nonzero = denominators > 0
    scores[nonzero] = 2.0 * chi[nonzero] / denominators[nonzero]
    order = sorted(range(len(scores)), key=lambda i: (-scores[i], i))
    results: list[tuple[VertexId, float]] = []
    for index in order:
        if not include_self and index == query.index:
            continue
        results.append((VertexId(path.source, index), float(scores[index])))
        if len(results) == k:
            break
    return results
