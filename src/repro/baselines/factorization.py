"""Matrix factorization and clustering primitives (from scratch).

Support code for the community-distribution outlier baseline
(:mod:`repro.baselines.cdoutlier`): non-negative matrix factorization by
multiplicative updates (Lee & Seung, 2001) and Lloyd's k-means.  Both are
deterministic given a seed and depend only on numpy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MeasureError
from repro.utils.rng import ensure_rng

__all__ = ["nmf", "kmeans"]

_EPS = 1e-10


def nmf(
    matrix: np.ndarray,
    components: int,
    *,
    iterations: int = 200,
    seed: int | np.random.Generator = 0,
    tolerance: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Factor a non-negative matrix as ``V ≈ W @ H``.

    Multiplicative updates minimizing the Frobenius reconstruction error:

        H ← H · (Wᵀ V) / (Wᵀ W H)
        W ← W · (V Hᵀ) / (W H Hᵀ)

    Parameters
    ----------
    matrix:
        Non-negative (n x m) data matrix.
    components:
        Inner dimension (number of communities), ``1 <= k <= min(n, m)``.
    iterations:
        Maximum update rounds; stops early when the relative error change
        falls below ``tolerance``.

    Returns
    -------
    (W, H):
        Non-negative factors of shapes (n x k) and (k x m).
    """
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2:
        raise MeasureError(f"expected a 2-D matrix, got shape {data.shape}")
    if (data < 0).any():
        raise MeasureError("NMF requires a non-negative matrix")
    n, m = data.shape
    if not 1 <= components <= min(n, m):
        raise MeasureError(
            f"components must be in [1, {min(n, m)}], got {components}"
        )
    rng = ensure_rng(seed)
    scale = np.sqrt(data.mean() / components) if data.mean() > 0 else 1.0
    w = rng.random((n, components)) * scale + _EPS
    h = rng.random((components, m)) * scale + _EPS

    previous_error = np.inf
    for __ in range(iterations):
        h *= (w.T @ data) / (w.T @ w @ h + _EPS)
        w *= (data @ h.T) / (w @ (h @ h.T) + _EPS)
        error = float(np.linalg.norm(data - w @ h))
        if previous_error - error < tolerance * max(previous_error, 1.0):
            break
        previous_error = error
    return w, h


def kmeans(
    points: np.ndarray,
    clusters: int,
    *,
    iterations: int = 100,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++-style seeding.

    Returns
    -------
    (centroids, labels):
        Cluster centers (k x d) and per-point assignments (n,).
    """
    data = np.asarray(points, dtype=float)
    if data.ndim != 2:
        raise MeasureError(f"expected a 2-D point matrix, got shape {data.shape}")
    n = data.shape[0]
    if not 1 <= clusters <= n:
        raise MeasureError(f"clusters must be in [1, {n}], got {clusters}")
    rng = ensure_rng(seed)

    # k-means++ seeding: spread the initial centroids out.
    centroids = np.empty((clusters, data.shape[1]))
    centroids[0] = data[int(rng.integers(n))]
    closest = np.full(n, np.inf)
    for position in range(1, clusters):
        distances = np.einsum(
            "ij,ij->i", data - centroids[position - 1], data - centroids[position - 1]
        )
        np.minimum(closest, distances, out=closest)
        total = closest.sum()
        if total <= 0:
            centroids[position:] = data[int(rng.integers(n))]
            break
        centroids[position] = data[int(rng.choice(n, p=closest / total))]

    labels = np.zeros(n, dtype=int)
    for __ in range(iterations):
        squared = (
            np.einsum("ij,ij->i", data, data)[:, None]
            - 2.0 * data @ centroids.T
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
        )
        new_labels = np.argmin(squared, axis=1)
        if (new_labels == labels).all() and __ > 0:
            break
        labels = new_labels
        for cluster in range(clusters):
            members = data[labels == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                farthest = int(np.argmax(np.min(squared, axis=1)))
                centroids[cluster] = data[farthest]
    return centroids, labels
