"""Comparison methods cited by the paper, implemented from scratch.

* :mod:`~repro.baselines.lof` — Local Outlier Factor (Breunig et al.,
  SIGMOD 2000), the measure the paper's Section 8 compares against.
* :mod:`~repro.baselines.knn_outlier` — distance-based k-NN outliers
  (Ramaswamy et al., SIGMOD 2000 / Knorr & Ng, VLDB 1998).
* :mod:`~repro.baselines.pathsim` — PathSim top-k similarity search
  (Sun et al., VLDB 2011), the similarity measure Section 5.2 contrasts
  with normalized connectivity.
* :mod:`~repro.baselines.simrank` / :mod:`~repro.baselines.ppr` — SimRank
  (Jeh & Widom, KDD 2002) and Personalized PageRank, the two similarities
  Section 5.2 says PathSim improves upon for visibility-mismatched pairs.
* :mod:`~repro.baselines.cdoutlier` — community-distribution outliers
  (Gupta, Gao & Han, ECML/PKDD 2013), the closest prior HIN outlier method
  in the related work, built on from-scratch NMF and k-means
  (:mod:`~repro.baselines.factorization`).
"""

from repro.baselines.lof import local_outlier_factor
from repro.baselines.knn_outlier import knn_distance_scores, top_k_distance_outliers
from repro.baselines.pathsim import pathsim, pathsim_matrix, pathsim_top_k
from repro.baselines.simrank import simrank_scores, simrank_similarity
from repro.baselines.ppr import personalized_pagerank, ppr_similarity
from repro.baselines.factorization import kmeans, nmf
from repro.baselines.cdoutlier import (
    CommunityDistributionResult,
    community_distribution_outliers,
)

__all__ = [
    "local_outlier_factor",
    "knn_distance_scores",
    "top_k_distance_outliers",
    "pathsim",
    "pathsim_matrix",
    "pathsim_top_k",
    "simrank_scores",
    "simrank_similarity",
    "personalized_pagerank",
    "ppr_similarity",
    "nmf",
    "kmeans",
    "community_distribution_outliers",
    "CommunityDistributionResult",
]
