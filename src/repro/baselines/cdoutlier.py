"""Community-distribution outliers (Gupta, Gao & Han — ECML/PKDD 2013).

The paper's related work [7]: in a heterogeneous network, each vertex has a
*community distribution* (soft memberships over k latent communities); most
vertices follow one of a few distribution *patterns*, and an outlier is a
vertex whose distribution fits no pattern well.

This is a faithful simplification of the published method, built on the
from-scratch primitives in :mod:`repro.baselines.factorization`:

1. soft community memberships come from NMF on the vertices' neighbor
   vectors (rows L1-normalized to distributions);
2. the dominant distribution patterns are k-means centroids over the
   membership distributions;
3. the outlier score is the distance from a vertex's distribution to its
   nearest pattern (**higher = more outlying** — note the opposite polarity
   to NetOut's Ω).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.baselines.factorization import kmeans, nmf
from repro.exceptions import MeasureError

__all__ = ["CommunityDistributionResult", "community_distribution_outliers"]


@dataclass
class CommunityDistributionResult:
    """Output of the community-distribution detector.

    Attributes
    ----------
    scores:
        Per-vertex outlier score (distance to the nearest pattern;
        higher = more outlying).
    memberships:
        (n x k) community distributions (rows sum to 1, except all-zero
        rows for vertices with empty neighbor vectors).
    patterns:
        (p x k) pattern centroids.
    pattern_of:
        Index of each vertex's nearest pattern.
    """

    scores: np.ndarray
    memberships: np.ndarray
    patterns: np.ndarray
    pattern_of: np.ndarray


def community_distribution_outliers(
    phi: sparse.spmatrix | np.ndarray,
    *,
    communities: int = 5,
    patterns: int = 3,
    seed: int = 0,
) -> CommunityDistributionResult:
    """Score vertices by how badly their community distribution fits any
    dominant pattern.

    Parameters
    ----------
    phi:
        Stacked neighbor vectors (one row per vertex), e.g. authors x venues.
    communities:
        Number of latent communities (NMF inner dimension).
    patterns:
        Number of dominant distribution patterns (k-means clusters).
    seed:
        Determinism seed for both factorization and clustering.
    """
    matrix = sparse.csr_matrix(phi) if not sparse.issparse(phi) else phi.tocsr()
    dense = np.asarray(matrix.todense(), dtype=float)
    if dense.ndim != 2 or dense.shape[0] < 2:
        raise MeasureError("need a 2-D matrix with at least two vertices")
    communities = min(communities, min(dense.shape))
    if patterns < 1:
        raise MeasureError(f"patterns must be >= 1, got {patterns}")
    patterns = min(patterns, dense.shape[0])

    w, __ = nmf(dense, communities, seed=seed)
    row_sums = w.sum(axis=1, keepdims=True)
    memberships = np.divide(
        w, row_sums, out=np.zeros_like(w), where=row_sums > 0
    )

    centroids, labels = kmeans(memberships, patterns, seed=seed)
    differences = memberships - centroids[labels]
    scores = np.sqrt(np.einsum("ij,ij->i", differences, differences))
    return CommunityDistributionResult(
        scores=scores,
        memberships=memberships,
        patterns=centroids,
        pattern_of=labels,
    )
