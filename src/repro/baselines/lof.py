"""Local Outlier Factor (Breunig, Kriegel, Ng, Sander — SIGMOD 2000).

Implemented from scratch over dense feature matrices (in our setting,
neighbor vectors ``φ_P``).  The paper's Section 8 reports that LOF "cannot
produce better results than NetOut" on its queries; the ablation benchmark
replays that comparison on planted outliers.

Definitions (for ``k = min_pts``):

* ``k-distance(p)`` — distance to p's k-th nearest neighbor.
* ``N_k(p)`` — all points within k-distance (≥ k points under ties).
* ``reach-dist_k(p, o) = max(k-distance(o), d(p, o))``.
* ``lrd_k(p) = 1 / mean_{o ∈ N_k(p)} reach-dist_k(p, o)``.
* ``LOF_k(p) = mean_{o ∈ N_k(p)} lrd_k(o) / lrd_k(p)``.

LOF ≈ 1 means inlier; larger values mean stronger outliers.  Note the
polarity is the *opposite* of NetOut's Ω (where smaller = more outlying).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MeasureError

__all__ = ["local_outlier_factor"]


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix via the expanded-norm identity."""
    squared_norms = np.einsum("ij,ij->i", points, points)
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (points @ points.T)
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared)


def local_outlier_factor(points: np.ndarray, min_pts: int = 5) -> np.ndarray:
    """LOF score per row of ``points`` (larger = more outlying).

    Parameters
    ----------
    points:
        Dense (n x d) feature matrix.
    min_pts:
        The ``k`` of the k-distance neighborhood; must satisfy
        ``1 <= min_pts < n``.

    Notes
    -----
    Ties at the k-distance are handled per the original definition: the
    neighborhood contains *every* point at distance ≤ k-distance, so it may
    exceed ``min_pts`` points.  Duplicate points (zero distances) receive
    the conventional treatment: if a point's neighborhood has zero mean
    reachability its lrd is infinite, and LOF of points in duplicate
    clusters comes out as 1 (ratio of equal infinities is taken as 1).
    """
    data = np.asarray(points, dtype=float)
    if data.ndim != 2:
        raise MeasureError(f"expected a 2-D point matrix, got shape {data.shape}")
    count = data.shape[0]
    if not 1 <= min_pts < count:
        raise MeasureError(
            f"min_pts must satisfy 1 <= min_pts < n (= {count}), got {min_pts}"
        )

    distances = _pairwise_distances(data)
    np.fill_diagonal(distances, np.inf)

    # k-distance per point: k-th smallest distance to another point.
    sorted_distances = np.sort(distances, axis=1)
    k_distances = sorted_distances[:, min_pts - 1]

    # Neighborhoods: all points within the k-distance (ties included).
    neighborhoods: list[np.ndarray] = [
        np.flatnonzero(distances[i] <= k_distances[i]) for i in range(count)
    ]

    # Local reachability density.
    lrd = np.empty(count, dtype=float)
    for i, neighbors in enumerate(neighborhoods):
        reach = np.maximum(k_distances[neighbors], distances[i, neighbors])
        mean_reach = reach.mean()
        lrd[i] = np.inf if mean_reach == 0.0 else 1.0 / mean_reach

    # LOF: mean neighbor lrd over own lrd.
    lof = np.empty(count, dtype=float)
    for i, neighbors in enumerate(neighborhoods):
        neighbor_lrd = lrd[neighbors]
        if np.isinf(lrd[i]):
            # Duplicate cluster: own density is infinite.  All-infinite
            # neighbors → inlier (1.0); any finite neighbor contributes 0.
            finite = np.isfinite(neighbor_lrd)
            lof[i] = 1.0 if not finite.any() else float(
                np.mean(np.where(finite, 0.0, 1.0))
            )
            continue
        ratios = neighbor_lrd / lrd[i]
        # Infinite neighbor densities dominate; cap at a large finite value
        # to keep downstream rankings usable.
        ratios = np.where(np.isinf(ratios), np.finfo(float).max / count, ratios)
        lof[i] = float(ratios.mean())
    return lof
