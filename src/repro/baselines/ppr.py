"""Personalized PageRank over heterogeneous networks.

The second similarity the paper's Section 5.2 contrasts with PathSim.
Computed by power iteration of

    p ← (1 - α) · e_s + α · Wᵀ p

where ``W`` is the row-stochastic union adjacency (all edge types) and
``e_s`` the restart distribution concentrated on the seed vertex.  The
stationary ``p[v]`` is the personalized PageRank of ``v`` w.r.t. the seed.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import MeasureError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.baselines.simrank import _global_offsets, _union_adjacency

__all__ = ["personalized_pagerank", "ppr_similarity"]


def personalized_pagerank(
    network: HeterogeneousInformationNetwork,
    seed: VertexId,
    *,
    damping: float = 0.85,
    iterations: int = 50,
    tolerance: float = 1e-10,
) -> tuple[np.ndarray, dict[str, int]]:
    """PPR vector of ``seed`` over every vertex, plus type offsets.

    Dangling vertices (no out-edges) teleport back to the seed, preserving
    the probability mass.

    Returns
    -------
    (scores, offsets):
        ``scores`` sums to 1 over the global index space;
        ``offsets[type]`` maps a type to its global index base.
    """
    if not 0.0 < damping < 1.0:
        raise MeasureError(f"damping must be in (0, 1), got {damping}")
    if iterations < 1:
        raise MeasureError(f"iterations must be >= 1, got {iterations}")
    offsets = _global_offsets(network)
    adjacency = _union_adjacency(network)
    total = adjacency.shape[0]
    seed_index = offsets[seed.type] + seed.index
    if not 0 <= seed_index < total:
        raise MeasureError(f"seed {seed} is outside the network")

    out_degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inverse = np.zeros_like(out_degrees)
    nonzero = out_degrees > 0
    inverse[nonzero] = 1.0 / out_degrees[nonzero]
    walk = (sparse.diags(inverse) @ adjacency).tocsr()
    dangling = ~nonzero

    restart = np.zeros(total)
    restart[seed_index] = 1.0
    scores = restart.copy()
    for __ in range(iterations):
        dangling_mass = scores[dangling].sum()
        updated = (
            damping * (walk.T @ scores)
            + (damping * dangling_mass + (1.0 - damping)) * restart
        )
        if np.abs(updated - scores).sum() < tolerance:
            scores = updated
            break
        scores = updated
    return scores, offsets


def ppr_similarity(
    network: HeterogeneousInformationNetwork,
    seed: VertexId,
    target: VertexId,
    *,
    damping: float = 0.85,
    iterations: int = 50,
) -> float:
    """PPR of ``target`` from ``seed`` (convenience accessor)."""
    scores, offsets = personalized_pagerank(
        network, seed, damping=damping, iterations=iterations
    )
    return float(scores[offsets[target.type] + target.index])
