"""SimRank similarity (Jeh & Widom, KDD 2002) over heterogeneous networks.

Section 5.2 of the paper contrasts PathSim with SimRank: "Comparing to
SimRank or Personalized PageRank, PathSim assigns lower similarity to
vertices whose connectivity is high but whose visibilities differ."  To
replay that comparison we implement SimRank from scratch.

SimRank's recursive definition: two vertices are similar when their
neighbors are similar,

    s(a, b) = C / (|N(a)| |N(b)|) · Σ_{u∈N(a)} Σ_{v∈N(b)} s(u, v)

with ``s(a, a) = 1`` and decay factor ``C`` (typically 0.8).  On a
heterogeneous network we run it over the union of all edge types (the
classical formulation ignores types), computed by fixed-point iteration on
the normalized adjacency:  ``S ← C · Wᵀ S W`` with the diagonal pinned
to 1.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import MeasureError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId

__all__ = ["simrank_scores", "simrank_similarity"]


def _global_offsets(network: HeterogeneousInformationNetwork) -> dict[str, int]:
    """Contiguous global index space over all vertex types (sorted order)."""
    offsets: dict[str, int] = {}
    position = 0
    for vertex_type in sorted(network.schema.vertex_types):
        offsets[vertex_type] = position
        position += network.num_vertices(vertex_type)
    return offsets


def _union_adjacency(network: HeterogeneousInformationNetwork) -> sparse.csr_matrix:
    """Type-agnostic adjacency over the global index space."""
    offsets = _global_offsets(network)
    total = network.num_vertices()
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for edge_type in network.schema.edge_types:
        matrix = network.adjacency(edge_type.source, edge_type.target).tocoo()
        row_offset = offsets[edge_type.source]
        col_offset = offsets[edge_type.target]
        rows.extend(int(i) + row_offset for i in matrix.row)
        cols.extend(int(j) + col_offset for j in matrix.col)
        data.extend(float(c) for c in matrix.data)
    return sparse.csr_matrix((data, (rows, cols)), shape=(total, total))


def simrank_scores(
    network: HeterogeneousInformationNetwork,
    *,
    decay: float = 0.8,
    iterations: int = 8,
) -> tuple[np.ndarray, dict[str, int]]:
    """Full SimRank matrix over every vertex (dense) plus type offsets.

    Suitable for the small/medium networks the comparison benches use; the
    matrix is ``n x n`` dense over all vertices.

    Returns
    -------
    (similarity, offsets):
        ``similarity[i, j]`` is SimRank between global vertices ``i`` and
        ``j``; ``offsets[type]`` maps a type to its global index base.
    """
    if not 0.0 < decay < 1.0:
        raise MeasureError(f"decay must be in (0, 1), got {decay}")
    if iterations < 1:
        raise MeasureError(f"iterations must be >= 1, got {iterations}")
    adjacency = _union_adjacency(network)
    total = adjacency.shape[0]
    if total == 0:
        return np.zeros((0, 0)), _global_offsets(network)
    # Column-normalize: W[:, j] distributes over j's in-neighbors.
    degrees = np.asarray(adjacency.sum(axis=0)).ravel()
    inverse = np.zeros_like(degrees)
    nonzero = degrees > 0
    inverse[nonzero] = 1.0 / degrees[nonzero]
    normalized = (adjacency @ sparse.diags(inverse)).tocsc()

    similarity = np.eye(total)
    for __ in range(iterations):
        similarity = decay * (normalized.T @ similarity @ normalized)
        similarity = np.asarray(similarity)
        np.fill_diagonal(similarity, 1.0)
    return similarity, _global_offsets(network)


def simrank_similarity(
    network: HeterogeneousInformationNetwork,
    a: VertexId,
    b: VertexId,
    *,
    decay: float = 0.8,
    iterations: int = 8,
) -> float:
    """SimRank between two vertices (convenience over :func:`simrank_scores`)."""
    similarity, offsets = simrank_scores(
        network, decay=decay, iterations=iterations
    )
    return float(similarity[offsets[a.type] + a.index, offsets[b.type] + b.index])
