"""Distance-based outliers (Knorr & Ng, VLDB 1998; Ramaswamy et al., SIGMOD 2000).

The Ramaswamy formulation scores each point by its distance to its k-th
nearest neighbor (``D^k``) and returns the top-n points by that score —
one of the classical top-k outlier miners the paper's related work cites.
Implemented densely; the candidate sets queries produce are small enough
that partition-based pruning is unnecessary here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MeasureError

__all__ = ["knn_distance_scores", "top_k_distance_outliers"]


def knn_distance_scores(points: np.ndarray, k: int = 5) -> np.ndarray:
    """``D^k`` score per row: Euclidean distance to the k-th nearest neighbor.

    Larger scores mean stronger outliers.
    """
    data = np.asarray(points, dtype=float)
    if data.ndim != 2:
        raise MeasureError(f"expected a 2-D point matrix, got shape {data.shape}")
    count = data.shape[0]
    if not 1 <= k < count:
        raise MeasureError(f"k must satisfy 1 <= k < n (= {count}), got {k}")
    squared_norms = np.einsum("ij,ij->i", data, data)
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (data @ data.T)
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared)
    np.fill_diagonal(distances, np.inf)
    return np.sort(distances, axis=1)[:, k - 1]


def top_k_distance_outliers(
    points: np.ndarray, n_outliers: int, k: int = 5
) -> list[int]:
    """Indices of the top ``n_outliers`` points by descending ``D^k`` score.

    Ties break by index for determinism.
    """
    scores = knn_distance_scores(points, k)
    order = sorted(range(len(scores)), key=lambda i: (-scores[i], i))
    return order[:n_outliers]
