"""repro — Query-based outlier detection in heterogeneous information networks.

A full reimplementation of Kuck, Zhuang, Yan, Cam & Han, *"Query-Based
Outlier Detection in Heterogeneous Information Networks"* (EDBT 2015):
the outlier query language, the NetOut measure, and the Baseline / PM /
SPM execution strategies, over a from-scratch heterogeneous-network
substrate.

Quickstart
----------
>>> from repro import OutlierDetector
>>> from repro.datagen import hub_ego_corpus
>>> corpus = hub_ego_corpus()
>>> detector = OutlierDetector(corpus.network, strategy="pm")
>>> result = detector.detect('''
...     FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author
...     JUDGED BY author.paper.venue
...     TOP 5;
... ''')
>>> len(result)
5

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    DegradedResultWarning,
    ExecutionError,
    MeasureError,
    MetaPathError,
    NetworkError,
    QueryError,
    QuerySemanticError,
    QuerySyntaxError,
    ReproError,
    ResourceLimitError,
    SchemaError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    TransientFaultError,
    VertexNotFoundError,
)
from repro.hin import (
    HIN,
    BibliographicNetworkBuilder,
    HeterogeneousInformationNetwork,
    NetworkBuilder,
    NetworkSchema,
    Publication,
    Vertex,
    VertexId,
    bibliographic_schema,
)
from repro.metapath import MetaPath, WeightedMetaPath
from repro.core import (
    CosineMeasure,
    Measure,
    NetOutMeasure,
    OutlierResult,
    PathSimMeasure,
    ScoredVertex,
    available_measures,
    get_measure,
    normalized_connectivity,
    register_measure,
)
from repro.query import (
    QUERY_TEMPLATES,
    Query,
    format_query,
    parse_query,
    validate_query,
)
from repro.evalmetrics import (
    average_precision,
    precision_at_k,
    rank_of,
    recall_at_k,
    reciprocal_rank,
)
from repro.hin.stats import network_summary
from repro.engine import (
    BaselineStrategy,
    Deadline,
    FallbackStrategy,
    ProgressiveQueryExecutor,
    QueryAdvisor,
    ExecutionStats,
    MetaPathIndex,
    OutlierDetector,
    PMStrategy,
    QueryExecutor,
    ResiliencePolicy,
    SPMStrategy,
    WorkloadAnalyzer,
    build_pm_index,
    build_spm_index,
    explain,
    make_strategy,
)
from repro.service import EngineHandle, QueryService, ServiceConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Exceptions
    "ReproError",
    "SchemaError",
    "NetworkError",
    "VertexNotFoundError",
    "MetaPathError",
    "QueryError",
    "QuerySyntaxError",
    "QuerySemanticError",
    "ExecutionError",
    "MeasureError",
    # HIN substrate
    "NetworkSchema",
    "bibliographic_schema",
    "HeterogeneousInformationNetwork",
    "HIN",
    "NetworkBuilder",
    "BibliographicNetworkBuilder",
    "Publication",
    "Vertex",
    "VertexId",
    # Meta-paths
    "MetaPath",
    "WeightedMetaPath",
    # Measures
    "Measure",
    "NetOutMeasure",
    "PathSimMeasure",
    "CosineMeasure",
    "get_measure",
    "register_measure",
    "available_measures",
    "normalized_connectivity",
    "OutlierResult",
    "ScoredVertex",
    # Query language
    "Query",
    "parse_query",
    "format_query",
    "validate_query",
    "QUERY_TEMPLATES",
    # Engine
    "OutlierDetector",
    "QueryExecutor",
    "BaselineStrategy",
    "PMStrategy",
    "SPMStrategy",
    "make_strategy",
    "MetaPathIndex",
    "build_pm_index",
    "build_spm_index",
    "WorkloadAnalyzer",
    "ExecutionStats",
    "explain",
    "ProgressiveQueryExecutor",
    "QueryAdvisor",
    # Resilience
    "ResiliencePolicy",
    "Deadline",
    "FallbackStrategy",
    "DeadlineExceededError",
    "ResourceLimitError",
    "CircuitOpenError",
    "TransientFaultError",
    "DegradedResultWarning",
    # Query service
    "EngineHandle",
    "QueryService",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    # Evaluation & statistics
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "reciprocal_rank",
    "rank_of",
    "network_summary",
]
