"""Render query ASTs back to canonical query text.

The canonical form uses upper-case keywords, one clause per line, and quotes
anchor names with escaping, so ``parse_query(format_query(q)) == q`` for all
well-formed queries — a property the test suite checks with hypothesis.
"""

from __future__ import annotations

from repro.query.ast import (
    AttributeComparison,
    BooleanCondition,
    Chain,
    Comparison,
    Condition,
    FeaturePath,
    FilteredSet,
    NotCondition,
    Query,
    SetExpression,
    SetOperation,
)

__all__ = ["format_query", "format_set_expression", "format_condition"]


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def format_condition(condition: Condition) -> str:
    """Render a WHERE condition; parenthesizes OR under AND to keep precedence."""
    if isinstance(condition, Comparison):
        walk = ".".join((condition.alias,) + condition.steps)
        return (
            f"{condition.function}({walk}) {condition.operator} "
            f"{_format_number(condition.value)}"
        )
    if isinstance(condition, AttributeComparison):
        if isinstance(condition.value, str):
            literal = _quote(condition.value)
        else:
            literal = _format_number(condition.value)
        return (
            f"{condition.alias}.{condition.attribute} {condition.operator} "
            f"{literal}"
        )
    if isinstance(condition, BooleanCondition):
        left = format_condition(condition.left)
        right = format_condition(condition.right)
        if condition.operator == "AND":
            if isinstance(condition.left, BooleanCondition) and condition.left.operator == "OR":
                left = f"({left})"
            if isinstance(condition.right, BooleanCondition):
                right = f"({right})"
        elif isinstance(condition.right, BooleanCondition):
            # Preserve left-associativity of the parse on re-parse.
            right = f"({right})"
        return f"{left} {condition.operator} {right}"
    if isinstance(condition, NotCondition):
        inner = format_condition(condition.operand)
        if isinstance(condition.operand, BooleanCondition):
            inner = f"({inner})"
        return f"NOT {inner}"
    raise TypeError(f"unknown condition node {condition!r}")


def _format_alias_where(alias: str | None, where: Condition | None) -> str:
    text = ""
    if alias is not None:
        text += f" AS {alias}"
    if where is not None:
        text += f" WHERE {format_condition(where)}"
    return text


def format_set_expression(expression: SetExpression) -> str:
    """Render a set expression in canonical form."""
    if isinstance(expression, Chain):
        head = expression.types[0]
        if expression.anchor is not None:
            head += "{" + _quote(expression.anchor) + "}"
        text = ".".join([head, *expression.types[1:]])
        return text + _format_alias_where(expression.alias, expression.where)
    if isinstance(expression, SetOperation):
        left = format_set_expression(expression.left)
        right = format_set_expression(expression.right)
        # A set-operation right operand re-parses as a term, so it must be
        # parenthesized to preserve left-associativity; a chain whose alias
        # or where would be captured by the operator also needs parens.
        if isinstance(expression.right, SetOperation):
            right = f"({right})"
        return f"{left} {expression.operator} {right}"
    if isinstance(expression, FilteredSet):
        base = format_set_expression(expression.base)
        return f"({base})" + _format_alias_where(expression.alias, expression.where)
    raise TypeError(f"unknown set expression node {expression!r}")


def _format_feature(feature: FeaturePath) -> str:
    text = ".".join(feature.types)
    if feature.weight != 1.0:
        text += f": {_format_number(feature.weight)}"
    return text


def format_query(query: Query) -> str:
    """Render a full query in canonical multi-line form ending with ``;``."""
    lines = [f"FIND OUTLIERS FROM {format_set_expression(query.candidates)}"]
    if query.reference is not None:
        lines.append(f"COMPARED TO {format_set_expression(query.reference)}")
    features = ", ".join(_format_feature(f) for f in query.features)
    lines.append(f"JUDGED BY {features}")
    lines.append(f"TOP {query.top_k};")
    return "\n".join(lines)
