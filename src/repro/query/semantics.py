"""Semantic validation of parsed queries against a network schema.

Validation enforces the constraints stated with Definition 8:

* every vertex type mentioned exists in the schema, and every consecutive
  pair of types in a chain, WHERE walk, or feature meta-path is a registered
  edge type;
* the candidate and reference sets have the same member type;
* every feature meta-path starts at that member type;
* WHERE comparisons reference the set's declared alias (or its member type
  name when no alias was declared).

Successful validation yields a :class:`ValidatedQuery` carrying the resolved
member type and the feature paths as
:class:`~repro.metapath.metapath.WeightedMetaPath` objects ready for the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QuerySemanticError, SchemaError
from repro.hin.schema import NetworkSchema
from repro.metapath.metapath import MetaPath, WeightedMetaPath
from repro.query.ast import (
    AttributeComparison,
    BooleanCondition,
    Chain,
    Comparison,
    Condition,
    FilteredSet,
    NotCondition,
    Query,
    SetExpression,
    SetOperation,
)

__all__ = ["ValidatedQuery", "validate_query", "member_type_of"]


@dataclass(frozen=True)
class ValidatedQuery:
    """A query that passed semantic validation.

    Attributes
    ----------
    query:
        The original AST.
    member_type:
        The vertex type of candidate (and reference) set members.
    features:
        Feature meta-paths with weights, in query order.
    """

    query: Query
    member_type: str
    features: tuple[WeightedMetaPath, ...]


def _validate_type_sequence(schema: NetworkSchema, types: tuple[str, ...], context: str) -> None:
    try:
        schema.validate_type_sequence(types)
    except SchemaError as error:
        raise QuerySemanticError(f"{context}: {error}") from error


def _validate_condition(
    schema: NetworkSchema,
    condition: Condition,
    member_type: str,
    alias: str | None,
) -> None:
    if isinstance(condition, (Comparison, AttributeComparison)):
        valid_names = {member_type}
        if alias is not None:
            valid_names.add(alias)
        if condition.alias not in valid_names:
            expected = " or ".join(sorted(valid_names))
            raise QuerySemanticError(
                f"WHERE references unknown alias {condition.alias!r} "
                f"(expected {expected})"
            )
        if isinstance(condition, Comparison):
            walk = (member_type,) + condition.steps
            _validate_type_sequence(schema, walk, "WHERE walk")
        # Attribute names cannot be validated statically (attributes are
        # per-vertex data); missing attributes fail the predicate at
        # execution time.
    elif isinstance(condition, BooleanCondition):
        _validate_condition(schema, condition.left, member_type, alias)
        _validate_condition(schema, condition.right, member_type, alias)
    elif isinstance(condition, NotCondition):
        _validate_condition(schema, condition.operand, member_type, alias)
    else:  # pragma: no cover - exhaustive over the union
        raise QuerySemanticError(f"unknown condition node {condition!r}")


def member_type_of(schema: NetworkSchema, expression: SetExpression) -> str:
    """Validate ``expression`` against ``schema`` and return its member type.

    Raises
    ------
    QuerySemanticError
        If any type or step is illegal, set operands have mismatched member
        types, or a WHERE clause is invalid.
    """
    if isinstance(expression, Chain):
        _validate_type_sequence(schema, expression.types, f"set chain {'.'.join(expression.types)}")
        member = expression.member_type
        if expression.where is not None:
            _validate_condition(schema, expression.where, member, expression.alias)
        return member
    if isinstance(expression, SetOperation):
        left = member_type_of(schema, expression.left)
        right = member_type_of(schema, expression.right)
        if left != right:
            raise QuerySemanticError(
                f"{expression.operator} operands have different member types: "
                f"{left!r} vs {right!r}"
            )
        return left
    if isinstance(expression, FilteredSet):
        member = member_type_of(schema, expression.base)
        if expression.where is not None:
            _validate_condition(schema, expression.where, member, expression.alias)
        return member
    raise QuerySemanticError(f"unknown set expression node {expression!r}")


def validate_query(schema: NetworkSchema, query: Query) -> ValidatedQuery:
    """Validate ``query`` against ``schema``; see module docstring for rules."""
    # TOP k is re-validated at execution time: the parser rejects bad
    # literals, but ASTs are also built programmatically, where a float,
    # bool, or non-positive k would otherwise surface as garbage slicing
    # deep inside ranking.
    top_k = query.top_k
    if isinstance(top_k, bool) or not isinstance(top_k, int):
        raise QuerySemanticError(
            f"TOP k must be a positive integer, got {top_k!r} "
            f"({type(top_k).__name__})"
        )
    if top_k <= 0:
        raise QuerySemanticError(f"TOP k must be a positive integer, got {top_k}")

    candidate_type = member_type_of(schema, query.candidates)
    if query.reference is not None:
        reference_type = member_type_of(schema, query.reference)
        if reference_type != candidate_type:
            raise QuerySemanticError(
                "candidate and reference sets must share a member type: "
                f"{candidate_type!r} vs {reference_type!r}"
            )

    features: list[WeightedMetaPath] = []
    for feature in query.features:
        if feature.types[0] != candidate_type:
            raise QuerySemanticError(
                f"feature meta-path {'.'.join(feature.types)} must start at the "
                f"candidate member type {candidate_type!r}"
            )
        _validate_type_sequence(
            schema, feature.types, f"feature meta-path {'.'.join(feature.types)}"
        )
        features.append(WeightedMetaPath(MetaPath(feature.types), feature.weight))

    return ValidatedQuery(
        query=query,
        member_type=candidate_type,
        features=tuple(features),
    )
