"""The outlier query language (paper Section 4).

The language has the shape::

    FIND OUTLIERS FROM <set-expression>
    [COMPARED TO <set-expression>]
    JUDGED BY <meta-path>[: weight] (, <meta-path>[: weight])*
    [TOP <k>];

Set expressions anchor at a named vertex and walk a meta-path
(``venue{"EDBT"}.paper.author``), may be aliased (``AS A``), filtered
(``WHERE COUNT(A.paper) > 10``), and combined with ``UNION`` / ``INTERSECT``
/ ``EXCEPT``.  The paper's Table 4 also spells the candidate clause as
``FIND OUTLIERS IN ...``; both keywords are accepted.

Pipeline: :func:`tokenize` → :func:`parse_query` → AST (:mod:`repro.query.ast`)
→ :func:`validate_query` against a schema → execution by
:mod:`repro.engine`.  :func:`format_query` renders an AST back to canonical
text and round-trips through the parser.
"""

from repro.query.tokens import Token, TokenType, tokenize
from repro.query.ast import (
    BooleanCondition,
    Chain,
    Comparison,
    Condition,
    FeaturePath,
    FilteredSet,
    NotCondition,
    Query,
    SetExpression,
    SetOperation,
)
from repro.query.parser import parse_query, parse_set_expression
from repro.query.semantics import ValidatedQuery, validate_query
from repro.query.formatter import format_query, format_set_expression
from repro.query.templates import (
    QUERY_TEMPLATES,
    QueryTemplate,
    TEMPLATE_Q1,
    TEMPLATE_Q2,
    TEMPLATE_Q3,
)

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "Query",
    "SetExpression",
    "Chain",
    "SetOperation",
    "FilteredSet",
    "Condition",
    "Comparison",
    "BooleanCondition",
    "NotCondition",
    "FeaturePath",
    "parse_query",
    "parse_set_expression",
    "validate_query",
    "ValidatedQuery",
    "format_query",
    "format_set_expression",
    "QueryTemplate",
    "QUERY_TEMPLATES",
    "TEMPLATE_Q1",
    "TEMPLATE_Q2",
    "TEMPLATE_Q3",
]
