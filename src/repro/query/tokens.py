"""Tokenizer for the outlier query language.

Keywords are case-insensitive (``find outliers`` parses the same as
``FIND OUTLIERS``); identifiers are case-sensitive.  String literals use
double quotes with backslash escapes, so vertex names containing quotes or
dots are expressible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import QuerySyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    """Lexical category of a token (keyword, identifier, literal, symbol)."""

    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    DOT = "dot"
    COMMA = "comma"
    COLON = "colon"
    SEMICOLON = "semicolon"
    LPAREN = "lparen"
    RPAREN = "rparen"
    LBRACE = "lbrace"
    RBRACE = "rbrace"
    COMPARE = "compare"
    END = "end"


KEYWORDS = frozenset(
    {
        "FIND",
        "OUTLIERS",
        "FROM",
        "IN",
        "COMPARED",
        "TO",
        "JUDGED",
        "BY",
        "TOP",
        "AS",
        "WHERE",
        "COUNT",
        "PATHS",
        "AND",
        "OR",
        "NOT",
        "UNION",
        "INTERSECT",
        "EXCEPT",
    }
)

_COMPARE_OPERATORS = (">=", "<=", "!=", "<>", "==", ">", "<", "=")

_SINGLE_CHAR_TOKENS = {
    ".": TokenType.DOT,
    ",": TokenType.COMMA,
    ":": TokenType.COLON,
    ";": TokenType.SEMICOLON,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token: its type, surface value, and source position."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.type is TokenType.END:
            return "<end of query>"
        return repr(self.value)


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a double-quoted string starting at ``text[start]``.

    Returns the decoded value and the index one past the closing quote.
    """
    assert text[start] == '"'
    chars: list[str] = []
    position = start + 1
    while position < len(text):
        char = text[position]
        if char == "\\":
            if position + 1 >= len(text):
                raise QuerySyntaxError(
                    "unterminated escape sequence in string literal",
                    position=position,
                )
            chars.append(text[position + 1])
            position += 2
            continue
        if char == '"':
            return "".join(chars), position + 1
        chars.append(char)
        position += 1
    raise QuerySyntaxError("unterminated string literal", position=start)


def _read_number(text: str, start: int) -> tuple[str, int]:
    """Read an (unsigned) integer or decimal literal starting at ``start``."""
    position = start
    while position < len(text) and text[position].isdigit():
        position += 1
    if position < len(text) and text[position] == ".":
        # Only consume the dot when a digit follows — otherwise it is the
        # meta-path dot operator (e.g. in "TOP 10.paper" the dot is not ours,
        # though such input will fail to parse later anyway).
        if position + 1 < len(text) and text[position + 1].isdigit():
            position += 1
            while position < len(text) and text[position].isdigit():
                position += 1
    return text[start:position], position


def tokenize(text: str) -> list[Token]:
    """Tokenize query text into a list ending with an END token.

    Raises
    ------
    QuerySyntaxError
        On any character that cannot start a token or on malformed string
        literals.
    """
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "-" and text.startswith("--", position):
            # SQL-style line comment.
            newline = text.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if char == '"':
            value, position = _read_string(text, position)
            tokens.append(Token(TokenType.STRING, value, position))
            continue
        if char.isdigit():
            value, new_position = _read_number(text, position)
            tokens.append(Token(TokenType.NUMBER, value, position))
            position = new_position
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (text[position].isalnum() or text[position] == "_"):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched_operator = next(
            (op for op in _COMPARE_OPERATORS if text.startswith(op, position)),
            None,
        )
        if matched_operator is not None:
            tokens.append(Token(TokenType.COMPARE, matched_operator, position))
            position += len(matched_operator)
            continue
        token_type = _SINGLE_CHAR_TOKENS.get(char)
        if token_type is not None:
            tokens.append(Token(token_type, char, position))
            position += 1
            continue
        raise QuerySyntaxError(
            f"unexpected character {char!r} in query", position=position
        )
    tokens.append(Token(TokenType.END, "", length))
    return tokens
