"""Recursive-descent parser for the outlier query language.

Grammar (keywords case-insensitive)::

    query      := FIND OUTLIERS (FROM | IN) set_expr
                  [COMPARED TO set_expr]
                  JUDGED BY feature (',' feature)*
                  [TOP NUMBER] [';']
    set_expr   := set_term ((UNION | INTERSECT | EXCEPT) set_term)*
    set_term   := '(' set_expr ')' [AS IDENT] [WHERE condition]
                | chain [AS IDENT] [WHERE condition]
    chain      := IDENT ['{' STRING '}'] ('.' IDENT)*
    condition  := and_cond (OR and_cond)*
    and_cond   := atom (AND atom)*
    atom       := (COUNT | PATHS) '(' IDENT ('.' IDENT)+ ')' COMPARE NUMBER
                | IDENT '.' IDENT COMPARE (NUMBER | STRING)
                | NOT atom
                | '(' condition ')'
    feature    := IDENT ('.' IDENT)+ [':' NUMBER]

Set operators are left-associative and equal precedence (apply in textual
order), matching the SQL-ish reading of the paper's examples.
"""

from __future__ import annotations

from repro.exceptions import QuerySyntaxError
from repro.query.ast import (
    DEFAULT_TOP_K,
    AttributeComparison,
    BooleanCondition,
    Chain,
    Comparison,
    Condition,
    FeaturePath,
    FilteredSet,
    NotCondition,
    Query,
    SetExpression,
    SetOperation,
)
from repro.query.tokens import Token, TokenType, tokenize

__all__ = ["parse_query", "parse_set_expression"]

_SET_OPERATORS = ("UNION", "INTERSECT", "EXCEPT")
_NORMALIZED_COMPARE = {"==": "=", "<>": "!="}


#: Maximum parenthesis-nesting depth; beyond this the input is hostile and
#: the parser fails cleanly instead of exhausting the Python stack.
MAX_NESTING_DEPTH = 64


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0
        self._depth = 0

    def _enter_nesting(self) -> None:
        self._depth += 1
        if self._depth > MAX_NESTING_DEPTH:
            raise QuerySyntaxError(
                f"parenthesis nesting exceeds {MAX_NESTING_DEPTH} levels",
                position=self.current.position,
            )

    def _exit_nesting(self) -> None:
        self._depth -= 1

    # -- cursor helpers -------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.END:
            self._position += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise QuerySyntaxError(
                f"expected keyword {word}, found {self.current}",
                position=self.current.position,
            )

    def expect(self, token_type: TokenType, description: str) -> Token:
        if self.current.type is not token_type:
            raise QuerySyntaxError(
                f"expected {description}, found {self.current}",
                position=self.current.position,
            )
        return self.advance()

    # -- grammar productions --------------------------------------------
    def parse_query(self) -> Query:
        self.expect_keyword("FIND")
        self.expect_keyword("OUTLIERS")
        if not self.accept_keyword("FROM") and not self.accept_keyword("IN"):
            raise QuerySyntaxError(
                f"expected FROM or IN after FIND OUTLIERS, found {self.current}",
                position=self.current.position,
            )
        candidates = self.parse_set_expression()

        reference: SetExpression | None = None
        if self.accept_keyword("COMPARED"):
            self.expect_keyword("TO")
            reference = self.parse_set_expression()

        self.expect_keyword("JUDGED")
        self.expect_keyword("BY")
        features = [self.parse_feature()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            features.append(self.parse_feature())

        top_k = DEFAULT_TOP_K
        if self.accept_keyword("TOP"):
            number = self.expect(TokenType.NUMBER, "an integer after TOP")
            if "." in number.value:
                raise QuerySyntaxError(
                    f"TOP expects an integer, got {number.value!r}",
                    position=number.position,
                )
            top_k = int(number.value)
            if top_k <= 0:
                raise QuerySyntaxError(
                    f"TOP expects a positive integer, got {top_k}",
                    position=number.position,
                )

        if self.current.type is TokenType.SEMICOLON:
            self.advance()
        if self.current.type is not TokenType.END:
            raise QuerySyntaxError(
                f"unexpected trailing input: {self.current}",
                position=self.current.position,
            )
        return Query(
            candidates=candidates,
            reference=reference,
            features=tuple(features),
            top_k=top_k,
        )

    def parse_set_expression(self) -> SetExpression:
        expression = self.parse_set_term()
        while self.current.type is TokenType.KEYWORD and self.current.value in _SET_OPERATORS:
            operator = self.advance().value
            right = self.parse_set_term()
            expression = SetOperation(operator=operator, left=expression, right=right)
        return expression

    def parse_set_term(self) -> SetExpression:
        if self.current.type is TokenType.LPAREN:
            self._enter_nesting()
            self.advance()
            inner = self.parse_set_expression()
            self.expect(TokenType.RPAREN, "a closing parenthesis")
            self._exit_nesting()
            alias, where = self.parse_alias_and_where()
            if alias is None and where is None:
                return inner
            return FilteredSet(base=inner, alias=alias, where=where)
        return self.parse_chain()

    def parse_chain(self) -> Chain:
        first = self.expect(TokenType.IDENT, "a vertex type name")
        anchor: str | None = None
        if self.current.type is TokenType.LBRACE:
            self.advance()
            anchor_token = self.expect(TokenType.STRING, "a quoted vertex name")
            anchor = anchor_token.value
            self.expect(TokenType.RBRACE, "a closing brace")
        types = [first.value]
        while self.current.type is TokenType.DOT:
            self.advance()
            step = self.expect(TokenType.IDENT, "a vertex type after '.'")
            types.append(step.value)
        alias, where = self.parse_alias_and_where()
        return Chain(types=tuple(types), anchor=anchor, alias=alias, where=where)

    def parse_alias_and_where(self) -> tuple[str | None, Condition | None]:
        alias: str | None = None
        where: Condition | None = None
        if self.accept_keyword("AS"):
            alias = self.expect(TokenType.IDENT, "an alias name after AS").value
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        return alias, where

    def parse_condition(self) -> Condition:
        condition = self.parse_and_condition()
        while self.current.is_keyword("OR"):
            self.advance()
            right = self.parse_and_condition()
            condition = BooleanCondition(operator="OR", left=condition, right=right)
        return condition

    def parse_and_condition(self) -> Condition:
        condition = self.parse_condition_atom()
        while self.current.is_keyword("AND"):
            self.advance()
            right = self.parse_condition_atom()
            condition = BooleanCondition(operator="AND", left=condition, right=right)
        return condition

    def parse_condition_atom(self) -> Condition:
        if self.accept_keyword("NOT"):
            self._enter_nesting()
            operand = self.parse_condition_atom()
            self._exit_nesting()
            return NotCondition(operand=operand)
        if self.current.type is TokenType.LPAREN:
            self._enter_nesting()
            self.advance()
            inner = self.parse_condition()
            self.expect(TokenType.RPAREN, "a closing parenthesis")
            self._exit_nesting()
            return inner
        if self.current.is_keyword("COUNT") or self.current.is_keyword("PATHS"):
            function = self.advance().value
            self.expect(TokenType.LPAREN, "'(' after " + function)
            alias = self.expect(TokenType.IDENT, "an alias name").value
            steps: list[str] = []
            while self.current.type is TokenType.DOT:
                self.advance()
                steps.append(self.expect(TokenType.IDENT, "a vertex type after '.'").value)
            if not steps:
                raise QuerySyntaxError(
                    f"{function}({alias}) needs at least one '.step'",
                    position=self.current.position,
                )
            self.expect(TokenType.RPAREN, "a closing parenthesis")
            operator_token = self.expect(TokenType.COMPARE, "a comparison operator")
            operator = _NORMALIZED_COMPARE.get(operator_token.value, operator_token.value)
            number = self.expect(TokenType.NUMBER, "a numeric literal")
            return Comparison(
                function=function,
                alias=alias,
                steps=tuple(steps),
                operator=operator,
                value=float(number.value),
            )
        if self.current.type is TokenType.IDENT:
            alias = self.advance().value
            self.expect(TokenType.DOT, "'.' after the alias")
            attribute = self.expect(TokenType.IDENT, "an attribute name").value
            operator_token = self.expect(TokenType.COMPARE, "a comparison operator")
            operator = _NORMALIZED_COMPARE.get(operator_token.value, operator_token.value)
            if self.current.type is TokenType.STRING:
                value: float | str = self.advance().value
                if operator not in ("=", "!="):
                    raise QuerySyntaxError(
                        f"string attributes only support = and !=, got {operator}",
                        position=operator_token.position,
                    )
            else:
                number = self.expect(TokenType.NUMBER, "a numeric or string literal")
                value = float(number.value)
            return AttributeComparison(
                alias=alias, attribute=attribute, operator=operator, value=value
            )
        raise QuerySyntaxError(
            f"expected a condition, found {self.current}",
            position=self.current.position,
        )

    def parse_feature(self) -> FeaturePath:
        first = self.expect(TokenType.IDENT, "a vertex type name")
        types = [first.value]
        while self.current.type is TokenType.DOT:
            self.advance()
            types.append(self.expect(TokenType.IDENT, "a vertex type after '.'").value)
        if len(types) < 2:
            raise QuerySyntaxError(
                "a feature meta-path needs at least two vertex types",
                position=first.position,
            )
        weight = 1.0
        if self.current.type is TokenType.COLON:
            self.advance()
            number = self.expect(TokenType.NUMBER, "a numeric weight after ':'")
            weight = float(number.value)
            if weight <= 0:
                raise QuerySyntaxError(
                    f"feature weight must be positive, got {weight}",
                    position=number.position,
                )
        return FeaturePath(types=tuple(types), weight=weight)


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`~repro.query.ast.Query`.

    Raises
    ------
    QuerySyntaxError
        On lexical or grammatical errors, with the source position attached.
    """
    return _Parser(tokenize(text)).parse_query()


def parse_set_expression(text: str) -> SetExpression:
    """Parse a standalone set expression (useful for tests and tooling)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_set_expression()
    if parser.current.type is not TokenType.END:
        raise QuerySyntaxError(
            f"unexpected trailing input: {parser.current}",
            position=parser.current.position,
        )
    return expression
