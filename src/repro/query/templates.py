"""The paper's Table 4 query templates.

The efficiency study (Figures 3-5) instantiates three templates over
randomly selected author vertices — the ``·`` placeholder in the paper.
:class:`QueryTemplate` renders a concrete query for a given anchor name;
:data:`QUERY_TEMPLATES` lists Q1-Q3 in paper order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import Query
from repro.query.parser import parse_query

__all__ = [
    "QueryTemplate",
    "TEMPLATE_Q1",
    "TEMPLATE_Q2",
    "TEMPLATE_Q3",
    "QUERY_TEMPLATES",
]


@dataclass(frozen=True)
class QueryTemplate:
    """A query with a ``{anchor}`` placeholder for the anchor vertex name.

    Attributes
    ----------
    name:
        Template identifier (``Q1`` .. ``Q3``).
    text:
        Query text with a single ``{anchor}`` placeholder inside the quoted
        anchor position.
    anchor_type:
        Vertex type the anchor is drawn from when generating workloads.
    """

    name: str
    text: str
    anchor_type: str

    def render(self, anchor_name: str) -> str:
        """The concrete query text for ``anchor_name``.

        Quotes and backslashes in the name are escaped so arbitrary vertex
        names remain parseable.
        """
        escaped = anchor_name.replace("\\", "\\\\").replace('"', '\\"')
        return self.text.format(anchor=escaped)

    def parse(self, anchor_name: str) -> Query:
        """Render and parse the query for ``anchor_name``."""
        return parse_query(self.render(anchor_name))


TEMPLATE_Q1 = QueryTemplate(
    name="Q1",
    text=(
        'FIND OUTLIERS FROM author{{"{anchor}"}}.paper.author\n'
        "JUDGED BY author.paper.venue\n"
        "TOP 10;"
    ),
    anchor_type="author",
)

TEMPLATE_Q2 = QueryTemplate(
    name="Q2",
    text=(
        'FIND OUTLIERS IN author{{"{anchor}"}}.paper.venue\n'
        "JUDGED BY venue.paper.term\n"
        "TOP 10;"
    ),
    anchor_type="author",
)

TEMPLATE_Q3 = QueryTemplate(
    name="Q3",
    text=(
        'FIND OUTLIERS IN author{{"{anchor}"}}.paper.term\n'
        "JUDGED BY term.paper.venue\n"
        "TOP 10;"
    ),
    anchor_type="author",
)

QUERY_TEMPLATES: tuple[QueryTemplate, ...] = (TEMPLATE_Q1, TEMPLATE_Q2, TEMPLATE_Q3)
