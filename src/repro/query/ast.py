"""Abstract syntax tree for the outlier query language.

The AST mirrors the general outlier query of Definition 8:
``Q = (Sc, Sr, P, w)`` — a candidate set expression, an optional reference
set expression (defaulting to the candidate set), a list of weighted feature
meta-paths, and the number of outliers to return.

All nodes are frozen dataclasses so they hash and compare structurally,
which the formatter round-trip tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Union

__all__ = [
    "Condition",
    "Comparison",
    "AttributeComparison",
    "BooleanCondition",
    "NotCondition",
    "SetExpression",
    "Chain",
    "SetOperation",
    "FilteredSet",
    "FeaturePath",
    "Query",
    "DEFAULT_TOP_K",
]

DEFAULT_TOP_K = 10

ComparisonOperator = Literal[">", ">=", "<", "<=", "=", "!="]
AggregateFunction = Literal["COUNT", "PATHS"]
SetOperator = Literal["UNION", "INTERSECT", "EXCEPT"]


# ----------------------------------------------------------------------
# WHERE-clause conditions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """``COUNT(alias.step1.step2) > value`` style atomic predicate.

    Attributes
    ----------
    function:
        ``COUNT`` counts distinct vertices in the neighborhood ``N_P``;
        ``PATHS`` sums path-instance counts (``‖φ_P‖₁``).
    alias:
        The set alias (or member type name) the walk starts from.
    steps:
        The vertex types walked from each member vertex — at least one.
    operator, value:
        The comparison applied to the aggregate.
    """

    function: AggregateFunction
    alias: str
    steps: tuple[str, ...]
    operator: ComparisonOperator
    value: float

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a WHERE comparison needs at least one step")


@dataclass(frozen=True)
class AttributeComparison:
    """``alias.attribute <op> literal`` — a predicate on vertex attributes.

    Examples: ``A.year >= 2000``, ``A.city = "Boston"``.  A vertex whose
    attribute is missing, or whose attribute type does not match the
    literal, fails the predicate (SQL NULL-style semantics).

    Attributes
    ----------
    alias:
        The set alias (or member type name).
    attribute:
        Attribute name looked up on each member vertex.
    operator, value:
        The comparison; ``value`` is a float for numeric literals and a
        str for quoted literals.
    """

    alias: str
    attribute: str
    operator: ComparisonOperator
    value: float | str


@dataclass(frozen=True)
class BooleanCondition:
    """``left AND right`` / ``left OR right``."""

    operator: Literal["AND", "OR"]
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True)
class NotCondition:
    """``NOT operand``."""

    operand: "Condition"


Condition = Union[Comparison, AttributeComparison, BooleanCondition, NotCondition]


# ----------------------------------------------------------------------
# Set expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Chain:
    """An anchored (or bare) meta-path walk producing a vertex set.

    ``venue{"EDBT"}.paper.author`` → ``Chain(types=("venue", "paper",
    "author"), anchor="EDBT")``; the member type is the last element.
    A bare type (``author``) selects every vertex of that type.

    Attributes
    ----------
    types:
        Vertex type sequence; the first type carries the anchor.
    anchor:
        Name of the anchoring vertex, or ``None`` for all-of-type.
    alias:
        Optional ``AS`` alias for WHERE clauses.
    where:
        Optional filter condition.
    """

    types: tuple[str, ...]
    anchor: str | None = None
    alias: str | None = None
    where: Condition | None = None

    def __post_init__(self) -> None:
        if not self.types:
            raise ValueError("a chain needs at least one vertex type")

    @property
    def member_type(self) -> str:
        """The type of the vertices this expression evaluates to."""
        return self.types[-1]


@dataclass(frozen=True)
class SetOperation:
    """``left UNION right`` / ``INTERSECT`` / ``EXCEPT`` (left-associative)."""

    operator: SetOperator
    left: "SetExpression"
    right: "SetExpression"


@dataclass(frozen=True)
class FilteredSet:
    """A parenthesized sub-expression with an alias and/or WHERE filter."""

    base: "SetExpression"
    alias: str | None = None
    where: Condition | None = None


SetExpression = Union[Chain, SetOperation, FilteredSet]


# ----------------------------------------------------------------------
# Feature meta-paths and the query root
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FeaturePath:
    """One JUDGED BY entry: a meta-path with an optional weight (default 1)."""

    types: tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.types) < 2:
            raise ValueError("a feature meta-path needs at least two vertex types")
        if self.weight <= 0:
            raise ValueError(f"feature weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class Query:
    """Root node: the full outlier query of Definition 8.

    ``reference`` is ``None`` when no COMPARED TO clause was given, in which
    case the reference set equals the candidate set at execution time.
    """

    candidates: SetExpression
    features: tuple[FeaturePath, ...]
    reference: SetExpression | None = None
    top_k: int = DEFAULT_TOP_K

    def __post_init__(self) -> None:
        if not self.features:
            raise ValueError("a query needs at least one feature meta-path")
        if self.top_k <= 0:
            raise ValueError(f"TOP k must be positive, got {self.top_k}")
