"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch a single base class at an API
boundary.  Sub-classes partition errors by subsystem: schema/graph
construction, meta-path algebra, query parsing and validation, and query
execution.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "NetworkError",
    "VertexNotFoundError",
    "MetaPathError",
    "QueryError",
    "QuerySyntaxError",
    "QuerySemanticError",
    "ExecutionError",
    "MeasureError",
    "UnsupportedSchemaError",
    "DeadlineExceededError",
    "ResourceLimitError",
    "CircuitOpenError",
    "TransientFaultError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "WorkerCrashedError",
    "ReplicaUnavailableError",
    "NoReplicasAvailableError",
    "DegradedResultWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A network schema is malformed or an operation violates the schema.

    Examples: declaring an edge type between undeclared vertex types, or
    registering the same vertex type twice with conflicting metadata.
    """


class NetworkError(ReproError):
    """An operation on a heterogeneous information network is invalid.

    Examples: adding an edge whose endpoints were never added, or adding a
    vertex whose type is not in the schema.
    """


class VertexNotFoundError(NetworkError, KeyError):
    """A vertex lookup by (type, name) or id failed.

    Inherits :class:`KeyError` so mapping-style call sites behave naturally.
    """

    def __init__(self, message: str):
        # Bypass KeyError.__str__ which repr()s its single argument.
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.message


class MetaPathError(ReproError):
    """A meta-path is malformed or incompatible with the schema.

    Examples: concatenating paths whose junction types differ, or
    materializing a meta-path that traverses a non-existent edge type.
    """


class QueryError(ReproError):
    """Base class for errors in the outlier query language."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed.

    Carries the offending position so tools can point at the error.
    """

    def __init__(self, message: str, *, position: int | None = None, line: int | None = None):
        super().__init__(message)
        self.position = position
        self.line = line


class QuerySemanticError(QueryError):
    """The query parsed but is invalid against the network schema.

    Examples: a feature meta-path that does not start at the candidate
    type, a vertex type that does not exist, or an empty candidate set
    expression.
    """


class ExecutionError(ReproError):
    """Query execution failed after parsing and validation succeeded."""


class MeasureError(ReproError):
    """An outlierness measure was misconfigured or given invalid input."""


class UnsupportedSchemaError(MeasureError):
    """A zoo detector was asked to score a network its schema cannot serve.

    The detector-zoo contract (:mod:`repro.zoo`) requires every detector to
    refuse an incompatible scenario *gracefully*: a query whose member type
    or feature meta-path does not exist in the fitted network's schema
    raises this typed error instead of an arbitrary ``KeyError`` deep inside
    materialization.  Subclasses :class:`MeasureError` so existing
    measure-level handlers keep catching it.
    """

    def __init__(
        self,
        message: str,
        *,
        detector: str | None = None,
        schema_detail: str | None = None,
    ):
        super().__init__(message)
        self.detector = detector
        self.schema_detail = schema_detail


class DeadlineExceededError(ExecutionError):
    """A query ran past its time budget (cooperative deadline enforcement).

    Raised from materialization and scoring loops when the per-query
    :class:`~repro.engine.resilience.Deadline` expires.  Carries the budget
    and the elapsed time at the moment the overrun was detected so callers
    (and tests) can verify enforcement latency.
    """

    def __init__(
        self,
        message: str,
        *,
        budget_seconds: float | None = None,
        elapsed_seconds: float | None = None,
    ):
        super().__init__(message)
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class ResourceLimitError(ExecutionError):
    """An operation was refused because it would exceed a resource guardrail.

    Example: materializing a PM index whose estimated size exceeds the
    configured ``max_memory_mb``.  Carries the estimate and the limit in
    bytes when known.
    """

    def __init__(
        self,
        message: str,
        *,
        estimated_bytes: int | None = None,
        limit_bytes: int | None = None,
    ):
        super().__init__(message)
        self.estimated_bytes = estimated_bytes
        self.limit_bytes = limit_bytes


class CircuitOpenError(ExecutionError):
    """A circuit breaker is open: the guarded operation is short-circuited.

    After N consecutive failures of a guarded operation (index construction,
    typically) the breaker refuses further attempts until its reset window
    elapses, so a flapping dependency cannot consume every query's budget.
    """


class TransientFaultError(ExecutionError):
    """A transient, retryable failure (I/O hiccup, injected fault, ...).

    The resilience layer's retry-with-backoff treats this class (and only
    the classes it is configured with) as retryable; anything else
    propagates immediately.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the long-lived query service layer.

    Service errors are *not* :class:`ExecutionError` subclasses: they
    describe the state of the service wrapper (full queue, shut down), not a
    failure of query execution itself.
    """


class ServiceOverloadedError(ServiceError):
    """The service shed a request because its admission queue is full.

    Load shedding is the service's backpressure mechanism: rather than
    queueing unboundedly (and blowing latency for everyone), a request that
    arrives when ``queue_depth`` requests are already waiting is refused
    with this typed error.  ``retry_after_seconds`` is the service's
    estimate of when capacity will free up — the HTTP frontend maps it to a
    ``Retry-After`` header on a 429 response.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_seconds: float | None = None,
        queued: int | None = None,
        capacity: int | None = None,
    ):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds
        self.queued = queued
        self.capacity = capacity


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that has been shut down.

    Raised by :meth:`~repro.service.QueryService.submit` after
    :meth:`~repro.service.QueryService.close`; in-flight requests accepted
    before the close still complete (graceful drain).
    """


class WorkerCrashedError(ServiceError):
    """A worker process died while (re)executing this request.

    The process backend replaces crashed workers and resubmits their
    outstanding queries once (queries are read-only, so a retry is safe);
    this error surfaces only when the retry *also* lost its worker —
    evidence the query itself is killing workers, not a transient fault.
    """


class ReplicaUnavailableError(ServiceError):
    """One replica failed to answer a routed request.

    Raised (and caught) inside the replica router's failover loop for the
    failures that justify trying the next replica on the hash ring:
    connection refused, a timeout, a torn response, or a 5xx status.  It
    feeds the replica's circuit breaker; client errors (4xx) and admission
    sheds (429) do **not** raise this — they are the replica answering
    correctly, and pass through to the client instead.
    """

    def __init__(
        self,
        message: str,
        *,
        replica_id: str | None = None,
        status: int | None = None,
    ):
        super().__init__(message)
        self.replica_id = replica_id
        self.status = status


class NoReplicasAvailableError(ServiceError):
    """Every candidate replica for a request is down, draining, or open.

    The router's graceful-degradation terminal state: rather than hanging
    or retrying forever, the request fails fast with this typed error.
    ``retry_after_seconds`` is derived from the soonest circuit-breaker
    half-open time among the request's candidates (floored at the health
    probe interval), so the HTTP frontend can attach an honest
    ``Retry-After`` hint to its 503 response.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_seconds: float | None = None,
        attempted: int | None = None,
    ):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds
        self.attempted = attempted


class DegradedResultWarning(UserWarning):
    """A query succeeded but on a degraded path (fallback strategy, partial).

    This is a :class:`UserWarning`, not a :class:`ReproError`: the query
    *did* return a usable ranking.  The accompanying
    :class:`~repro.core.results.OutlierResult` carries ``degraded=True`` and
    a ``degradation_reason`` explaining which rung of the ladder answered.
    """
