"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch a single base class at an API
boundary.  Sub-classes partition errors by subsystem: schema/graph
construction, meta-path algebra, query parsing and validation, and query
execution.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "NetworkError",
    "VertexNotFoundError",
    "MetaPathError",
    "QueryError",
    "QuerySyntaxError",
    "QuerySemanticError",
    "ExecutionError",
    "MeasureError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A network schema is malformed or an operation violates the schema.

    Examples: declaring an edge type between undeclared vertex types, or
    registering the same vertex type twice with conflicting metadata.
    """


class NetworkError(ReproError):
    """An operation on a heterogeneous information network is invalid.

    Examples: adding an edge whose endpoints were never added, or adding a
    vertex whose type is not in the schema.
    """


class VertexNotFoundError(NetworkError, KeyError):
    """A vertex lookup by (type, name) or id failed.

    Inherits :class:`KeyError` so mapping-style call sites behave naturally.
    """

    def __init__(self, message: str):
        # Bypass KeyError.__str__ which repr()s its single argument.
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.message


class MetaPathError(ReproError):
    """A meta-path is malformed or incompatible with the schema.

    Examples: concatenating paths whose junction types differ, or
    materializing a meta-path that traverses a non-existent edge type.
    """


class QueryError(ReproError):
    """Base class for errors in the outlier query language."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed.

    Carries the offending position so tools can point at the error.
    """

    def __init__(self, message: str, *, position: int | None = None, line: int | None = None):
        super().__init__(message)
        self.position = position
        self.line = line


class QuerySemanticError(QueryError):
    """The query parsed but is invalid against the network schema.

    Examples: a feature meta-path that does not start at the candidate
    type, a vertex type that does not exist, or an empty candidate set
    expression.
    """


class ExecutionError(ReproError):
    """Query execution failed after parsing and validation succeeded."""


class MeasureError(ReproError):
    """An outlierness measure was misconfigured or given invalid input."""
