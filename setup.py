"""Legacy setup shim.

Metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools
cannot perform PEP 660 editable builds (no ``wheel`` package available).
"""

from setuptools import setup

setup()
