#!/usr/bin/env python
"""Smoke test for ``repro serve``: real process, real HTTP, real concurrency.

Boots the service as a subprocess on an ephemeral port, fires 50 concurrent
queries at it in waves (a small distinct-query pool, repeated — the shape of
a dashboard workload), and asserts the serving contract:

* every response is non-5xx (2xx for queries, no server-side crashes),
* the result-cache hit rate sampled from ``GET /stats`` after each wave is
  monotone non-decreasing and ends above where it started,
* the server shuts down cleanly (exit code 0) after ``--max-requests``.

With ``--adaptive`` the server runs the workload-adaptive re-indexer
(``--strategy spm --adaptive``, tight interval) and the smoke additionally
asserts:

* a background re-index cycle lands while traffic flows (``/healthz``
  reports ``index.generation >= 1`` and ``index.reindexes >= 1``),
* a pinned query's result payload is byte-identical before and after the
  hot-swap (adaptation must never change answers),
* the server drains cleanly on SIGTERM (exit code 0).

Run from the repository root::

    PYTHONPATH=src python scripts/serve_smoke.py [--backend thread|process]
                                                 [--adaptive]

``--backend`` selects the service's execution backend (CI runs the smoke
once per backend); the serving contract asserted here is identical for
both.  Exits 0 on success, 1 on any violation — CI-friendly, stdlib-only.
"""

from __future__ import annotations

import argparse
import http.client
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

WAVES = 5
QUERIES_PER_WAVE = 10
DISTINCT_QUERIES = [
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    f"JUDGED BY author.paper.venue TOP {top};"
    for top in range(1, 6)
]
#: 50 queries + one /stats probe per wave; the server stops itself after.
TOTAL_REQUESTS = WAVES * (QUERIES_PER_WAVE + 1)


def request(host: str, port: int, method: str, path: str, body=None):
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="execution backend for the served QueryService",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="serve with the workload-adaptive re-indexer and assert a "
        "hot-swap lands without changing answers",
    )
    args = parser.parse_args()
    repo_root = Path(__file__).resolve().parent.parent
    with tempfile.TemporaryDirectory() as tmp:
        corpus = str(Path(tmp) / "corpus.json")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate",
             "--preset", "ego", "--seed", "0", "--out", corpus],
            check=True,
            cwd=repo_root,
        )

        command = [sys.executable, "-m", "repro", "serve",
                   "--network", corpus,
                   "--port", "0",
                   "--backend", args.backend,
                   "--workers", "4",
                   "--queue-depth", "64"]
        if args.adaptive:
            # SPM + a tight re-index loop; shutdown comes via SIGTERM once
            # the swap has been observed, not via a request budget.
            command += ["--strategy", "spm",
                        "--adaptive",
                        "--reindex-interval", "1.0",
                        "--reindex-min-queries", "10",
                        "--subpath-cache-mb", "16"]
        else:
            command += ["--max-requests", str(TOTAL_REQUESTS)]
        server = subprocess.Popen(
            command,
            cwd=repo_root,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            if match is None:
                print(f"FAIL: no serving banner, got {banner!r}")
                return 1
            host, port = match.group(1), int(match.group(2))
            print(banner.strip())

            def post(query: str):
                return request(host, port, "POST", "/query", {"query": query})

            bad_statuses: list[int] = []
            hit_rates: list[float] = []
            pinned_before = None
            if args.adaptive:
                # Pin one query's payload before any swap can land.
                status, body = post(DISTINCT_QUERIES[0])
                if status != 200:
                    print(f"FAIL: pinned query got {status}: {body}")
                    return 1
                pinned_before = json.dumps(body["result"], sort_keys=True)
            with ThreadPoolExecutor(max_workers=QUERIES_PER_WAVE) as pool:
                for wave in range(WAVES):
                    queries = [
                        DISTINCT_QUERIES[i % len(DISTINCT_QUERIES)]
                        for i in range(QUERIES_PER_WAVE)
                    ]
                    for status, _ in pool.map(post, queries):
                        if status >= 500:
                            bad_statuses.append(status)
                    status, stats = request(host, port, "GET", "/stats")
                    if status >= 500:
                        bad_statuses.append(status)
                    hit_rates.append(stats["cache"]["hit_rate"])
                    print(
                        f"wave {wave + 1}/{WAVES}: "
                        f"cache hit rate {hit_rates[-1]:.2f}"
                    )

            failures = []
            if args.adaptive:
                # Wait for a re-index cycle to land on live traffic.
                index_meta = {}
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    status, health = request(host, port, "GET", "/healthz")
                    index_meta = health.get("index", {})
                    if (
                        status == 200
                        and index_meta.get("generation", 0) >= 1
                        and index_meta.get("reindexes", 0) >= 1
                    ):
                        break
                    time.sleep(0.25)
                else:
                    failures.append(
                        f"no re-index landed within 30s: {index_meta}"
                    )
                if not failures:
                    print(
                        f"re-index landed: generation "
                        f"{index_meta['generation']}, row coverage "
                        f"{index_meta['row_coverage']:.3f}"
                    )
                    status, body = post(DISTINCT_QUERIES[0])
                    if status != 200:
                        failures.append(f"post-swap query got {status}")
                    elif (
                        json.dumps(body["result"], sort_keys=True)
                        != pinned_before
                    ):
                        failures.append(
                            "hot-swap changed the pinned query's payload"
                        )
                server.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + 30.0
            while server.poll() is None and time.monotonic() < deadline:
                time.sleep(0.1)

            if bad_statuses:
                failures.append(f"5xx responses: {bad_statuses}")
            if not args.adaptive:
                # A hot-swap invalidates the result cache by design, so the
                # monotone-hit-rate contract only binds the static smoke.
                if any(b < a for a, b in zip(hit_rates, hit_rates[1:])):
                    failures.append(f"hit rate not monotone: {hit_rates}")
                if hit_rates[-1] <= hit_rates[0]:
                    failures.append(f"cache never warmed: {hit_rates}")
            if server.returncode != 0:
                failures.append(f"server exit code {server.returncode}")
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}")
                return 1
            print(
                f"OK: {WAVES * QUERIES_PER_WAVE} concurrent queries, "
                f"zero 5xx, hit rate {hit_rates[0]:.2f} -> {hit_rates[-1]:.2f}, "
                + ("adaptive swap verified, " if args.adaptive else "")
                + "clean shutdown"
            )
            return 0
        finally:
            if server.poll() is None:
                server.terminate()
                server.wait(timeout=10.0)
            server.stdout.close()


if __name__ == "__main__":
    raise SystemExit(main())
