"""CI smoke check: the quick zoo grid must match the committed golden report.

Runs the detector zoo in quick mode (every registered detector over every
scenario, seed 0) and diffs the deterministic projection of the report —
scores, rankings, metrics; timings stripped — against the golden fixture
committed at ``tests/zoo/golden/zoo_quick.json``.

Any drift means detector behavior changed: either a regression, or an
intentional change that must re-pin the fixture (run this script with
``--update`` and commit the result alongside the change).

Usage::

    PYTHONPATH=src python scripts/zoo_smoke.py            # check
    PYTHONPATH=src python scripts/zoo_smoke.py --update   # re-pin fixture
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.zoo import ZooRunConfig, run_zoo, strip_timings

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "zoo"
    / "golden"
    / "zoo_quick.json"
)

#: The exact configuration the golden fixture pins.
GOLDEN_CONFIG = ZooRunConfig(seeds=(0,), k=5, quick=True)


def golden_report() -> dict:
    """The deterministic quick-grid report (the golden projection)."""
    # A JSON round-trip normalizes types (tuples to lists) so the comparison
    # against the loaded fixture is apples to apples.
    return json.loads(json.dumps(strip_timings(run_zoo(GOLDEN_CONFIG))))


def _first_difference(expected, actual, path="report"):
    """Human-readable location of the first mismatch between two JSON trees."""
    if type(expected) is not type(actual):
        return f"{path}: type {type(expected).__name__} != {type(actual).__name__}"
    if isinstance(expected, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                return f"{path}.{key}: unexpected key"
            if key not in actual:
                return f"{path}.{key}: missing key"
            found = _first_difference(expected[key], actual[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(expected, list):
        if len(expected) != len(actual):
            return f"{path}: length {len(expected)} != {len(actual)}"
        for index, (left, right) in enumerate(zip(expected, actual)):
            found = _first_difference(left, right, f"{path}[{index}]")
            if found:
                return found
        return None
    if expected != actual:
        return f"{path}: {expected!r} != {actual!r}"
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the golden fixture from the current run",
    )
    args = parser.parse_args(argv)

    report = golden_report()
    if args.update:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"re-pinned {GOLDEN_PATH} ({len(report['results'])} grid cells)")
        return 0

    if not GOLDEN_PATH.exists():
        print(f"FAIL: golden fixture missing at {GOLDEN_PATH}", file=sys.stderr)
        print("run with --update to create it", file=sys.stderr)
        return 1
    expected = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    difference = _first_difference(expected, report)
    if difference:
        print("FAIL: zoo quick-grid report drifted from the golden fixture",
              file=sys.stderr)
        print(f"  first difference at {difference}", file=sys.stderr)
        print(
            "  if the change is intentional, re-pin with "
            "`PYTHONPATH=src python scripts/zoo_smoke.py --update`",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: zoo quick grid matches the golden fixture "
        f"({len(report['results'])} cells, "
        f"{len(report['detectors'])} detectors x "
        f"{len(report['scenarios'])} scenarios)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
