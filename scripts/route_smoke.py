#!/usr/bin/env python
"""Chaos smoke test for ``repro route``: kill a replica mid-burst, lose nothing.

Boots the replica router as a subprocess (3 supervised ``repro serve``
replicas behind the consistent-hash frontend), then asserts the
fault-tolerance contract end to end:

* a warm burst of concurrent queries all answer 200, each stamped with the
  ``X-Repro-Replica`` that served it;
* SIGKILL-ing one replica **mid-burst** loses no client request — every
  in-flight and subsequent query still answers 200 (failover absorbs the
  crash; zero 5xx reach clients);
* the killed replica's key range *moves* to a surviving replica, and after
  the supervisor respawns the replica and a probe re-admits it, the range
  *returns* to the original owner;
* the router shuts down cleanly on SIGTERM (exit code 0).

Run from the repository root::

    PYTHONPATH=src python scripts/route_smoke.py

Exits 0 on success, 1 on any violation — CI-friendly, stdlib-only.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

BURST_WORKERS = 8
WARM_QUERIES = 24
CHAOS_QUERIES = 48
DISTINCT_QUERIES = [
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    f"JUDGED BY author.paper.venue TOP {top};"
    for top in range(1, 9)
]


def request(host: str, port: int, method: str, path: str, body=None):
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(response.read()),
        )
    finally:
        connection.close()


def replica_rows(host: str, port: int) -> dict[str, dict]:
    _, _, payload = request(host, port, "GET", "/replicas")
    return {row["replica_id"]: row for row in payload["replicas"]}


def wait_until(predicate, *, timeout: float, interval: float = 0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        corpus = str(Path(tmp) / "corpus.json")
        subprocess.run(
            [sys.executable, "-m", "repro", "generate",
             "--preset", "ego", "--seed", "0", "--out", corpus],
            check=True,
            cwd=repo_root,
        )

        router = subprocess.Popen(
            [sys.executable, "-m", "repro", "route",
             "--network", corpus,
             "--replicas", "3",
             "--port", "0",
             "--workers", "2",
             "--queue-depth", "64",
             # Tight chaos windows: a dead replica leaves rotation within
             # 0.2s, its respawn re-enters within 0.2s of its banner.
             "--probe-interval", "0.2",
             "--breaker-threshold", "2",
             "--breaker-reset", "1.0",
             "--restart-base-delay", "0.2",
             "--max-restarts-in-window", "10"],
            cwd=repo_root,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            banner = router.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            if match is None:
                print(f"FAIL: no routing banner, got {banner!r}")
                return 1
            host, port = match.group(1), int(match.group(2))
            print(banner.strip())
            # Keep draining router stdout so it can never block on the pipe.
            threading.Thread(
                target=router.stdout.read, daemon=True
            ).start()

            statuses: list[int] = []
            lock = threading.Lock()

            def post(query: str) -> str | None:
                """One routed query; records its status, returns the server."""
                try:
                    status, headers, _ = request(
                        host, port, "POST", "/query", {"query": query}
                    )
                except OSError as error:
                    with lock:
                        statuses.append(599)
                    print(f"FAIL: client transport error: {error}")
                    return None
                with lock:
                    statuses.append(status)
                return headers.get("X-Repro-Replica")

            probe_query = DISTINCT_QUERIES[0]
            with ThreadPoolExecutor(max_workers=BURST_WORKERS) as pool:
                # -- Phase 1: warm burst -------------------------------------
                warm = [
                    DISTINCT_QUERIES[i % len(DISTINCT_QUERIES)]
                    for i in range(WARM_QUERIES)
                ]
                list(pool.map(post, warm))
                owner = post(probe_query)
                if owner is None:
                    print("FAIL: no replica answered the probe query")
                    return 1
                rows = replica_rows(host, port)
                victim_pid = rows[owner]["pid"]
                print(
                    f"probe query owned by {owner} (pid {victim_pid}); "
                    f"killing it mid-burst"
                )

                # -- Phase 2: SIGKILL the owner mid-burst --------------------
                chaos = [
                    DISTINCT_QUERIES[i % len(DISTINCT_QUERIES)]
                    for i in range(CHAOS_QUERIES)
                ]
                burst = [pool.submit(post, query) for query in chaos]
                time.sleep(0.1)  # let the burst get in flight
                os.kill(victim_pid, signal.SIGKILL)
                moved_to = post(probe_query)
                for future in burst:
                    future.result()
                if moved_to == owner or moved_to is None:
                    failures.append(
                        f"key range did not move off the dead replica "
                        f"(answered by {moved_to!r})"
                    )
                else:
                    print(f"key range moved: {owner} -> {moved_to}")

                # -- Phase 3: respawn returns the key range ------------------
                def respawned():
                    rows = replica_rows(host, port)
                    row = rows[owner]
                    return (
                        row["pid"] not in (None, victim_pid)
                        and row["healthy"]
                    )

                if not wait_until(respawned, timeout=60.0):
                    failures.append(f"{owner} never respawned healthy")
                elif not wait_until(
                    lambda: post(probe_query) == owner, timeout=10.0
                ):
                    failures.append(
                        f"key range never returned to respawned {owner}"
                    )
                else:
                    new_pid = replica_rows(host, port)[owner]["pid"]
                    print(
                        f"{owner} respawned (pid {victim_pid} -> {new_pid}); "
                        f"key range returned"
                    )

            failed = [status for status in statuses if status >= 500]
            if failed:
                failures.append(
                    f"{len(failed)} of {len(statuses)} client requests "
                    f"failed: {sorted(set(failed))}"
                )

            router.send_signal(signal.SIGTERM)
            try:
                router.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                failures.append("router did not exit on SIGTERM")
            else:
                if router.returncode != 0:
                    failures.append(f"router exit code {router.returncode}")

            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}")
                return 1
            print(
                f"OK: {len(statuses)} client requests, zero failures through "
                f"a SIGKILL; key range moved and returned; clean shutdown"
            )
            return 0
        finally:
            if router.poll() is None:
                router.terminate()
                try:
                    router.wait(timeout=15.0)
                except subprocess.TimeoutExpired:
                    router.kill()
                    router.wait(timeout=5.0)


if __name__ == "__main__":
    raise SystemExit(main())
